// Package obs is the engine observability layer: a pluggable Sink
// interface that receives every scheduling decision the SimMR engine
// makes, as typed events, in exactly the order the engine handled them.
//
// The contract (DESIGN.md §8):
//
//   - Zero overhead when off. The engine guards every emission with a
//     single nil check; with no sink configured a replay performs no
//     observability work beyond plain integer counters.
//     `make bench-guard` enforces this against BENCH_engine.json.
//   - Exact order. Events are delivered synchronously from the engine's
//     event handlers, so the recorded sequence is the engine's handled
//     order — a replayed audit log of the simulation, in the spirit of
//     the paper's per-job timeline validation (Figures 1–2).
//   - One sink per engine. Sinks are not required to be safe for
//     concurrent use; under parallel fan-out (ReplayBatch,
//     CapacitySweep) every engine must own its own sink instance,
//     built via a SinkFactory.
//
// Three concrete sinks ship with the package: TimelineSink (slot
// occupancy, Figure 1/2-style), ChromeTraceSink (chrome://tracing /
// Perfetto export), and MetricsSink (concurrency-safe counter
// snapshots for expvar endpoints). RecordSink captures the raw stream
// for tests and custom processing.
package obs

import "math"

// Kind identifies one engine event type. The first seven kinds map
// one-to-one onto the paper's seven §III-B event types; the remainder
// expose the engine's slot-allocation and shuffle-patching internals.
type Kind uint8

const (
	// The paper's seven event types (§III-B). Task "start/finish" are
	// the engine's task arrival/departure events.
	KindJobArrival Kind = iota
	KindJobDeparture
	KindMapTaskStart
	KindMapTaskFinish
	KindReduceTaskStart
	KindReduceTaskFinish
	KindMapStageComplete

	// Engine internals beyond the paper's taxonomy.
	KindMapSlotAlloc      // policy granted a map slot to a job
	KindMapSlotRelease    // a map slot became free again
	KindReduceSlotAlloc   // policy granted a reduce slot to a job
	KindReduceSlotRelease // a reduce slot became free again
	KindPreempt           // a running map task was killed (PreemptMapTasks)
	KindFillerPatch       // a first-wave filler reduce got its real end time

	// KindCount bounds the Kind space for per-kind counter arrays.
	KindCount
)

var kindNames = [KindCount]string{
	"job-arrival", "job-departure",
	"map-task-start", "map-task-finish",
	"reduce-task-start", "reduce-task-finish",
	"map-stage-complete",
	"map-slot-alloc", "map-slot-release",
	"reduce-slot-alloc", "reduce-slot-release",
	"preempt", "filler-patch",
}

// String returns the stable lowercase name of the kind.
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observed engine decision. Events are passed by value —
// emitting one allocates nothing.
type Event struct {
	// Time is the simulated time the event was handled.
	Time float64
	Kind Kind
	// JobID identifies the job the event concerns (for KindPreempt,
	// the victim whose task was killed).
	JobID int
	// Task is the task index for task-scoped kinds (task start/finish,
	// preempt, filler-patch) and -1 otherwise.
	Task int
	// End is the planned finish time for task-start events — math.Inf(1)
	// for a first-wave filler reduce, whose real end is unknown until
	// the map stage completes — and the patched finish time for
	// KindFillerPatch. Zero for all other kinds.
	End float64
	// ShuffleEnd is the shuffle/reduce phase boundary for reduce-task
	// starts (math.Inf(1) for fillers) and for KindFillerPatch, where it
	// is mapStageEnd + firstShuffle (§III-B). Zero otherwise.
	ShuffleEnd float64
}

// Filler reports whether the event is a first-wave reduce start whose
// departure is a filler of unknown duration.
func (e Event) Filler() bool {
	return e.Kind == KindReduceTaskStart && math.IsInf(e.End, 1)
}

// Counters are the run-level totals delivered to Sink.RunEnd once a
// replay completes. The engine maintains them with plain integer
// arithmetic whether or not a sink is attached.
type Counters struct {
	// Events is the number of engine events processed (queue pops).
	Events uint64
	// HeapHighWater is the peak pending-event population of the event
	// queue — the quantity that bounds steady-state allocations under
	// the slab/free-list discipline (DESIGN.md §5).
	HeapHighWater int
	// Preemptions counts map tasks killed under PreemptMapTasks.
	Preemptions uint64
	// FillerPatches counts first-wave filler reduces whose departure
	// was patched at map-stage completion (§III-B shuffle modeling).
	FillerPatches uint64
	// MapSlotAllocs / ReduceSlotAllocs count slot grants.
	MapSlotAllocs    uint64
	ReduceSlotAllocs uint64
	// Jobs and Makespan summarize the replay outcome.
	Jobs     int
	Makespan float64
}

// Sink receives the engine's event stream. Implementations need not be
// safe for concurrent use: the engine calls Event and RunEnd from a
// single goroutine, and parallel runtimes give every engine its own
// sink (see SinkFactory). Event is on the simulation hot path —
// implementations should avoid per-event allocation where practical.
type Sink interface {
	// Event delivers one engine event, in handled order.
	Event(ev Event)
	// RunEnd delivers the run-level counters after the last event.
	RunEnd(c Counters)
}

// SinkFactory builds one sink per engine. Parallel entry points
// (CapacitySweep, ReplayBatch) call it once per concurrent run from the
// worker goroutine, so the factory itself must be safe for concurrent
// calls, while the sinks it returns need not be.
type SinkFactory func() Sink

// RecordSink captures the full event stream and final counters in
// memory — the reference sink for tests, golden files, and ad-hoc
// analysis.
type RecordSink struct {
	Events   []Event
	Counters Counters
	// Ended is set once RunEnd has been delivered.
	Ended bool
}

// Event appends ev to the record.
func (r *RecordSink) Event(ev Event) { r.Events = append(r.Events, ev) }

// RunEnd stores the run counters.
func (r *RecordSink) RunEnd(c Counters) { r.Counters, r.Ended = c, true }

// DepthSampler is an optional Sink extension: the engine periodically
// (every few hundred handled events) reports the pending-event-queue
// depth to sinks that implement it, so queue pressure over time is
// observable as a distribution, not just the final high-water mark.
// Like Event, SampleDepth is called from the engine's single goroutine.
type DepthSampler interface {
	// SampleDepth reports the event queue's pending population at
	// simulated time now.
	SampleDepth(now float64, depth int)
}

// ProgressSampler is an optional Sink extension: the engine
// periodically (on the same macro-step cadence as DepthSampler)
// reports replay progress — simulated time, events handled so far, and
// jobs departed out of the total — to sinks that implement it. This is
// the run registry's intra-replay progress feed: a single long replay
// surfaces live percent-complete without any per-event work. Like
// Event, SampleProgress is called from the engine's single goroutine.
type ProgressSampler interface {
	// SampleProgress reports replay progress at simulated time now.
	SampleProgress(now float64, events uint64, jobsDone, jobsTotal int)
}

// teeSink fans one engine's stream out to several sinks in order.
type teeSink struct{ sinks []Sink }

func (t teeSink) Event(ev Event) {
	for _, s := range t.sinks {
		s.Event(ev)
	}
}

func (t teeSink) RunEnd(c Counters) {
	for _, s := range t.sinks {
		s.RunEnd(c)
	}
}

// depthTeeSink is the tee variant returned when at least one member
// samples queue depth; kept separate so a depth-blind tee doesn't
// satisfy DepthSampler vacuously.
type depthTeeSink struct {
	teeSink
	samplers []DepthSampler
}

func (t depthTeeSink) SampleDepth(now float64, depth int) {
	for _, s := range t.samplers {
		s.SampleDepth(now, depth)
	}
}

// progressTeeSink is the tee variant for members that sample progress
// but not depth; like depthTeeSink it exists so a progress-blind tee
// doesn't satisfy ProgressSampler vacuously.
type progressTeeSink struct {
	teeSink
	progress []ProgressSampler
}

func (t progressTeeSink) SampleProgress(now float64, events uint64, jobsDone, jobsTotal int) {
	for _, s := range t.progress {
		s.SampleProgress(now, events, jobsDone, jobsTotal)
	}
}

// fullTeeSink samples both depth and progress.
type fullTeeSink struct {
	depthTeeSink
	progress []ProgressSampler
}

func (t fullTeeSink) SampleProgress(now float64, events uint64, jobsDone, jobsTotal int) {
	for _, s := range t.progress {
		s.SampleProgress(now, events, jobsDone, jobsTotal)
	}
}

// Tee combines sinks into one that forwards every event and RunEnd to
// each, in argument order. Nil sinks are skipped; Tee() returns nil.
// If any member implements DepthSampler or ProgressSampler, so does
// the combined sink — the samplers are resolved once here, not per
// call.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	var samplers []DepthSampler
	var progress []ProgressSampler
	for _, s := range live {
		if ds, ok := s.(DepthSampler); ok {
			samplers = append(samplers, ds)
		}
		if ps, ok := s.(ProgressSampler); ok {
			progress = append(progress, ps)
		}
	}
	tee := teeSink{sinks: live}
	switch {
	case len(samplers) > 0 && len(progress) > 0:
		return fullTeeSink{depthTeeSink{tee, samplers}, progress}
	case len(samplers) > 0:
		return depthTeeSink{tee, samplers}
	case len(progress) > 0:
		return progressTeeSink{tee, progress}
	}
	return tee
}
