// Package model implements the MapReduce performance model of §V-A,
// introduced in the authors' ARIA paper and used by the MinEDF scheduler
// to size per-job slot allocations.
//
// The core result: for n tasks processed greedily by k slots with average
// task duration avg and maximum max, the makespan T satisfies
//
//	n·avg/k  <=  T  <=  (n-1)·avg/k + max
//
// Composing the per-phase bounds (map, shuffle/sort, reduce) yields job
// completion-time estimates of the separable form
//
//	T = A·N_M/S_M + B·N_R/S_R + C
//
// which, solved as an inverse problem on the deadline hyperbola with a
// Lagrange multiplier, gives the minimal total number of slots meeting a
// deadline.
package model

import (
	"math"

	"simmr/internal/trace"
)

// Bounds holds a lower and upper estimate of a completion time.
type Bounds struct {
	Low, Up float64
}

// Avg returns the midpoint of the bounds — "typically ... a good
// approximation of the job completion time" (§V-A).
func (b Bounds) Avg() float64 { return (b.Low + b.Up) / 2 }

// StageBounds returns the makespan bounds of a greedy assignment of n
// tasks with the given average and maximum durations onto k slots.
func StageBounds(n, k int, avg, max float64) Bounds {
	if n <= 0 || k <= 0 {
		return Bounds{}
	}
	return Bounds{
		Low: float64(n) * avg / float64(k),
		Up:  float64(n-1)*avg/float64(k) + max,
	}
}

// Coeffs are the coefficients of the separable completion-time form
// T = A·N_M/S_M + B·N_R/S_R + C (equation 1 of the paper).
type Coeffs struct {
	A, B, C float64
}

// Eval computes T for a slot allocation.
func (c Coeffs) Eval(numMaps, numReduces, mapSlots, reduceSlots int) float64 {
	t := c.C
	if mapSlots > 0 {
		t += c.A * float64(numMaps) / float64(mapSlots)
	}
	if numReduces > 0 && reduceSlots > 0 {
		t += c.B * float64(numReduces) / float64(reduceSlots)
	}
	return t
}

// LowCoeffs returns the lower-bound coefficients for a job profile:
// map stage n·avg/k, reduce waves n·(typShuffle+reduce)avg/k, plus the
// non-overlapping first-shuffle latency.
func LowCoeffs(p trace.Profile) Coeffs {
	return Coeffs{
		A: p.Map.Avg,
		B: p.TypicalShuffle.Avg + p.Reduce.Avg,
		C: p.FirstShuffle.Avg,
	}
}

// UpCoeffs returns upper-bound coefficients. The (n-1)·avg/k + max form
// is relaxed to n·avg/k + max (still a valid upper bound) so the
// expression stays separable in N/S.
func UpCoeffs(p trace.Profile) Coeffs {
	return Coeffs{
		A: p.Map.Avg,
		B: p.TypicalShuffle.Avg + p.Reduce.Avg,
		C: p.Map.Max + p.FirstShuffle.Max + p.TypicalShuffle.Max + p.Reduce.Max,
	}
}

// AvgCoeffs returns the midpoint coefficients used for deadline sizing.
func AvgCoeffs(p trace.Profile) Coeffs {
	lo, up := LowCoeffs(p), UpCoeffs(p)
	return Coeffs{A: (lo.A + up.A) / 2, B: (lo.B + up.B) / 2, C: (lo.C + up.C) / 2}
}

// JobBounds estimates completion-time bounds for a profiled job run with
// the given slot allocation.
func JobBounds(p trace.Profile, mapSlots, reduceSlots int) Bounds {
	return Bounds{
		Low: LowCoeffs(p).Eval(p.NumMaps, p.NumReduces, mapSlots, reduceSlots),
		Up:  UpCoeffs(p).Eval(p.NumMaps, p.NumReduces, mapSlots, reduceSlots),
	}
}

// Estimate returns the midpoint completion-time estimate for an
// allocation — the quantity MinEDF compares against the deadline.
func Estimate(p trace.Profile, mapSlots, reduceSlots int) float64 {
	return JobBounds(p, mapSlots, reduceSlots).Avg()
}

// Allocation is a number of map and reduce slots granted to one job.
type Allocation struct {
	MapSlots, ReduceSlots int
	// Feasible reports whether the allocation meets the requested
	// deadline; when false, the allocation is the clamped maximum.
	Feasible bool
}

// Total returns MapSlots + ReduceSlots, the quantity MinimalSlots
// minimizes.
func (a Allocation) Total() int { return a.MapSlots + a.ReduceSlots }

// MinimalSlots solves the inverse problem of §V-A: the fewest total
// slots (S_M + S_R) such that the estimated completion time meets
// `deadline` (a duration relative to job start). Using the midpoint
// coefficients, all integral points on the hyperbola
// A·N_M/S_M + B·N_R/S_R = deadline − C are feasible allocations; the
// continuous minimum of S_M + S_R, by Lagrange multipliers, is at
//
//	S_M = (a + sqrt(a·b)) / d,   S_R = (b + sqrt(a·b)) / d
//
// with a = A·N_M, b = B·N_R, d = deadline − C. The continuous solution
// is rounded up and then greedily tightened while the deadline still
// holds. Results are clamped to the cluster capacity (maxMap, maxReduce)
// and to the job's task counts (extra slots beyond tasks are useless).
func MinimalSlots(p trace.Profile, deadline float64, maxMap, maxReduce int) Allocation {
	return MinimalSlotsCoeffs(p, AvgCoeffs(p), deadline, maxMap, maxReduce)
}

// MinimalSlotsCoeffs is MinimalSlots with an explicit coefficient choice
// (LowCoeffs for optimistic sizing, UpCoeffs for conservative sizing) —
// the knob behind the MinEDF-estimator ablation.
func MinimalSlotsCoeffs(p trace.Profile, c Coeffs, deadline float64, maxMap, maxReduce int) Allocation {
	capM := minInt(maxMap, p.NumMaps)
	capR := minInt(maxReduce, p.NumReduces)
	if capM < 1 {
		capM = 1
	}
	if p.NumReduces == 0 {
		capR = 0
	} else if capR < 1 {
		capR = 1
	}
	maxAlloc := Allocation{MapSlots: capM, ReduceSlots: capR}
	maxAlloc.Feasible = c.Eval(p.NumMaps, p.NumReduces, capM, capR) <= deadline

	d := deadline - c.C
	if d <= 0 || !maxAlloc.Feasible {
		// Deadline unattainable even with everything: grant the max.
		return maxAlloc
	}

	a := c.A * float64(p.NumMaps)
	b := c.B * float64(p.NumReduces)
	sqrtAB := math.Sqrt(a * b)
	sm := clampInt(int(math.Ceil((a+sqrtAB)/d)), 1, capM)
	sr := 0
	if p.NumReduces > 0 {
		sr = clampInt(int(math.Ceil((b+sqrtAB)/d)), 1, capR)
	}

	// Rounding may have left slack or (after clamping) a violation;
	// first grow to feasibility, then shrink greedily.
	for c.Eval(p.NumMaps, p.NumReduces, sm, sr) > deadline && (sm < capM || sr < capR) {
		// Grow the side with the larger marginal gain.
		if gainM, gainR := shrinkGain(c, p, sm, sr); gainM >= gainR && sm < capM {
			sm++
		} else if sr < capR {
			sr++
		} else {
			sm++
		}
	}
	for {
		switch {
		case sm > 1 && c.Eval(p.NumMaps, p.NumReduces, sm-1, sr) <= deadline:
			sm--
		case sr > 1 && c.Eval(p.NumMaps, p.NumReduces, sm, sr-1) <= deadline:
			sr--
		default:
			return Allocation{MapSlots: sm, ReduceSlots: sr, Feasible: true}
		}
	}
}

// shrinkGain returns the completion-time reduction from adding one map
// (resp. reduce) slot at the current allocation.
func shrinkGain(c Coeffs, p trace.Profile, sm, sr int) (gainM, gainR float64) {
	cur := c.Eval(p.NumMaps, p.NumReduces, sm, sr)
	gainM = cur - c.Eval(p.NumMaps, p.NumReduces, sm+1, sr)
	if p.NumReduces > 0 {
		gainR = cur - c.Eval(p.NumMaps, p.NumReduces, sm, sr+1)
	}
	return gainM, gainR
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
