package simmr

import "testing"

func sweepTrace() *Trace {
	tpl := &Template{
		AppName: "s", NumMaps: 32, NumReduces: 4,
		MapDurations:    constSlice(32, 10),
		FirstShuffle:    constSlice(4, 2),
		TypicalShuffle:  constSlice(4, 4),
		ReduceDurations: constSlice(4, 2),
	}
	tr := &Trace{Jobs: []*Job{
		// Deadline met comfortably at >= 2 slots but blown at 1 slot
		// (32 x 10 s of map work alone exceeds it serially).
		{Arrival: 0, Deadline: 300, Template: tpl},
		{Arrival: 10, Template: tpl.Clone()},
	}}
	tr.Normalize()
	return tr
}

func TestCapacitySweepMonotone(t *testing.T) {
	pts, err := CapacitySweep(sweepTrace(), SweepConfig{
		MapSlotCounts: []int{2, 4, 8, 16, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Makespan > pts[i-1].Makespan+1e-9 {
			t.Fatalf("makespan not monotone: %v", pts)
		}
	}
	// Square sweep: reduce slots track map slots.
	if pts[0].ReduceSlots != 2 || pts[4].ReduceSlots != 32 {
		t.Fatalf("square sweep broken: %+v", pts)
	}
}

func TestCapacitySweepExplicitGrid(t *testing.T) {
	pts, err := CapacitySweep(sweepTrace(), SweepConfig{
		MapSlotCounts:    []int{4, 8},
		ReduceSlotCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("grid points = %d", len(pts))
	}
	if pts[1].MapSlots != 4 || pts[1].ReduceSlots != 4 {
		t.Fatalf("grid order wrong: %+v", pts[1])
	}
}

func TestCapacitySweepDeadlineCounting(t *testing.T) {
	pts, err := CapacitySweep(sweepTrace(), SweepConfig{MapSlotCounts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// One slot: 64 maps x 10 s serialize; the 500 s deadline is blown.
	if pts[0].DeadlinesMissed != 1 {
		t.Fatalf("missed = %d, want 1", pts[0].DeadlinesMissed)
	}
}

func TestSmallestClusterMeeting(t *testing.T) {
	pts, err := CapacitySweep(sweepTrace(), SweepConfig{
		MapSlotCounts: []int{2, 4, 8, 16, 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	goal := pts[2].Makespan // achievable at 8 slots
	best := SmallestClusterMeeting(pts, goal)
	if best == nil || best.MapSlots != 8 {
		t.Fatalf("best = %+v", best)
	}
	if SmallestClusterMeeting(pts, 1) != nil {
		t.Fatal("impossible goal should return nil")
	}
}

func TestCapacitySweepValidation(t *testing.T) {
	if _, err := CapacitySweep(sweepTrace(), SweepConfig{}); err == nil {
		t.Fatal("empty grid should fail")
	}
}
