package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"simmr/internal/engine"
	"simmr/internal/mumak"
	"simmr/internal/parallel"
	"simmr/internal/sched"
	"simmr/internal/synth"
	"simmr/internal/trace"
)

// Figure6Point is one x-position of Figure 6: simulation wall time for a
// job-count prefix of the production trace, per simulator.
type Figure6Point struct {
	Jobs         int
	SimMRSeconds float64
	MumakSeconds float64
	SimMREvents  uint64
	MumakEvents  uint64
}

// Figure6Result reproduces the §IV-E simulator speed comparison: SimMR
// replays the full production trace in ~1.5 s versus Mumak's 680 s
// (>450×), because Mumak simulates every TaskTracker heartbeat. The
// paper's trace holds 1148 jobs from 6 months of cluster history.
type Figure6Result struct {
	Points []Figure6Point
	// SerialRuntimeHours is what the workload would take executed
	// serially (the paper quotes "about a week (152 hours)").
	SerialRuntimeHours float64
	// SimMREventsPerSec backs the "over one million events per second"
	// claim.
	SimMREventsPerSec float64
	// SpeedupAtMax is Mumak time / SimMR time at the largest prefix.
	SpeedupAtMax float64
}

// Figure6 generates an n-job production trace (paper: 1148) and times
// both simulators on growing prefixes.
func Figure6(totalJobs int, prefixes []int, seed int64) (*Figure6Result, error) {
	if totalJobs < 1 {
		return nil, fmt.Errorf("experiments: figure6 needs jobs >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	full, err := synth.ProductionTrace(totalJobs, rng)
	if err != nil {
		return nil, err
	}
	if len(prefixes) == 0 {
		prefixes = defaultPrefixes(totalJobs)
	}
	out := &Figure6Result{SerialRuntimeHours: full.SerialRuntime() / 3600}
	for _, n := range prefixes {
		if n < 1 || n > totalJobs {
			return nil, fmt.Errorf("experiments: prefix %d out of range", n)
		}
	}

	// Prefix cells run concurrently on the worker pool: event counts are
	// deterministic, and both simulators within one cell time under the
	// same core contention, so the figure's headline — the SimMR/Mumak
	// wall-clock ratio — is preserved while the whole grid finishes in
	// roughly the time of its largest cell.
	points, err := parallel.Map(context.Background(), 0, len(prefixes),
		func(_ context.Context, i int) (Figure6Point, error) {
			n := prefixes[i]
			sub := prefixTrace(full, n)
			p := Figure6Point{Jobs: n}

			start := time.Now()
			engRes, err := engine.Run(EngineConfig(), sub, sched.FIFO{})
			if err != nil {
				return p, fmt.Errorf("experiments: SimMR speed run: %w", err)
			}
			p.SimMRSeconds = time.Since(start).Seconds()
			p.SimMREvents = engRes.Events

			start = time.Now()
			mumRes, err := mumak.Run(mumak.DefaultConfig(), sub, sched.FIFO{})
			if err != nil {
				return p, fmt.Errorf("experiments: Mumak speed run: %w", err)
			}
			p.MumakSeconds = time.Since(start).Seconds()
			p.MumakEvents = mumRes.Events
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	out.Points = points

	last := out.Points[len(out.Points)-1]
	if last.SimMRSeconds > 0 {
		out.SimMREventsPerSec = float64(last.SimMREvents) / last.SimMRSeconds
		out.SpeedupAtMax = last.MumakSeconds / last.SimMRSeconds
	}
	return out, nil
}

func defaultPrefixes(total int) []int {
	var out []int
	for n := 100; n < total; n += 200 {
		out = append(out, n)
	}
	return append(out, total)
}

// prefixTrace views the first n jobs of a normalized trace. The jobs
// are shared with the full trace, not copied: simulators treat traces
// as read-only, so concurrent prefix cells can alias the same jobs.
func prefixTrace(tr *trace.Trace, n int) *trace.Trace {
	return &trace.Trace{Name: fmt.Sprintf("%s[:%d]", tr.Name, n), Jobs: tr.Jobs[:n:n]}
}

// Render renders the log-log series of Figure 6.
func (r *Figure6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "# Simulator speed comparison (serial workload runtime: %.0f hours)\n", r.SerialRuntimeHours)
	fmt.Fprintf(w, "# SimMR throughput: %.0f events/s; speedup over Mumak at max prefix: %.0fx\n",
		r.SimMREventsPerSec, r.SpeedupAtMax)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Jobs),
			fmt.Sprintf("%.4f", p.SimMRSeconds), fmt.Sprintf("%.4f", p.MumakSeconds),
			fmt.Sprint(p.SimMREvents), fmt.Sprint(p.MumakEvents),
		})
	}
	return writeRows(w, "jobs\tsimmr_s\tmumak_s\tsimmr_events\tmumak_events", rows)
}
