package simmr

import (
	"fmt"

	"simmr/internal/obs"
	"simmr/internal/runs"
)

// Run registry facade: the ops-plane types re-exported so embedders
// wire live run tracking without importing internal packages, in the
// same type-alias style as Telemetry and Sink.
//
// Pass DefaultRuns() (or a private NewRunRegistry) in SweepConfig.Runs
// / BatchConfig.Runs / BranchSetConfig.Runs and the entry point
// registers itself: kind, trace identity, policy and configuration
// fingerprints, live done/total progress, accumulated engine totals,
// and the final outcome. The debug server (-debug-addr) serves the
// default registry at /runs, streams it at /runs/{id}/stream, and
// exposes flight-recorder dumps at /runs/{id}/flight.
type (
	// RunRegistry tracks live runs plus a bounded ring of completed
	// ones.
	RunRegistry = runs.Registry
	// RunHandle is one registered run; see SweepConfig.Runs.
	RunHandle = runs.Handle
	// RunSnapshot is the JSON view served by /runs.
	RunSnapshot = runs.Snapshot
	// RunMeta is the identity a run registers with.
	RunMeta = runs.Meta
	// FlightRecorder is the fixed-ring post-mortem sink (obs package).
	FlightRecorder = obs.FlightRecorder
	// FlightDump is one immutable flight-recorder capture.
	FlightDump = obs.FlightDump
)

// DefaultRuns returns the process-wide run registry — the one the
// debug server serves.
func DefaultRuns() *RunRegistry { return runs.Default() }

// NewRunRegistry builds a private registry retaining the last
// recentCap completed runs (<= 0 selects the default capacity).
func NewRunRegistry(recentCap int) *RunRegistry { return runs.New(recentCap) }

// NewFlightRecorder builds a recorder retaining the last size events
// (<= 0 selects the 4096 default). Attach it as (or Tee it into) a
// replay's Sink; see obs.FlightRecorder for the trigger/dump contract.
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// beginRun registers one entry-point invocation with reg (nil reg, nil
// handle — every Handle method tolerates nil, so call sites stay
// branch-free). Identity is assembled here: trace name + content hash,
// policy name when one is statically known, and the caller's config
// fingerprint.
func beginRun(reg *runs.Registry, kind runs.Kind, tr *Trace, policy Policy, config string) *runs.Handle {
	if reg == nil {
		return nil
	}
	meta := runs.Meta{Kind: kind, Config: config}
	if tr != nil {
		meta.Trace = tr.Name
		meta.TraceHash = fmt.Sprintf("%016x", tr.Hash())
	}
	if policy != nil {
		meta.Policy = policy.Name()
	}
	return reg.Begin(meta)
}

// runFlight is the per-engine flight-recorder wiring shared by the
// sweep, batch, and branch fan-outs: a fresh ring per engine (sinks
// are single-goroutine), attached to the run for live HTTP triggers.
// finish inspects the outcome and captures the post-mortems the ops
// plane promises — "error" on a failed replay, "deadline-miss" when
// any job blew its deadline — storing them with the run.
func runFlight(h *runs.Handle, size int, label string) (rec *obs.FlightRecorder, finish func(res *ReplayResult, err error)) {
	if h == nil || size == 0 {
		return nil, func(*ReplayResult, error) {}
	}
	return attachFlight(h, obs.NewFlightRecorder(size), label)
}

// attachFlight registers an existing recorder (fresh, or a Fork() of a
// prefix recorder in a branch fan-out) with the run and returns the
// outcome-inspecting finish hook.
func attachFlight(h *runs.Handle, rec *obs.FlightRecorder, label string) (*obs.FlightRecorder, func(res *ReplayResult, err error)) {
	rec.SetLabel(label)
	h.AttachFlight(rec)
	return rec, func(res *ReplayResult, err error) {
		if err != nil {
			h.AddFlightDump(rec.Dump("error"))
			return
		}
		if res == nil {
			return
		}
		for i := range res.Jobs {
			if res.Jobs[i].ExceededDeadline() {
				h.AddFlightDump(rec.Dump("deadline-miss"))
				return
			}
		}
	}
}
