// Command experiments regenerates every figure and table of the paper's
// evaluation and writes one tab-separated result file each under
// -outdir (default results/). See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured comparisons.
//
// Usage:
//
//	experiments                      # everything, paper-scale where feasible
//	experiments -only fig5,fig6      # a subset
//	experiments -reps 40             # lighter Figure 7/8 sweeps
//	experiments -debug-addr :6060    # live /metrics + expvar + pprof
//	                                 # while the long sweeps run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"simmr/internal/experiments"
	"simmr/internal/parallel"
	"simmr/internal/rcache"
	"simmr/internal/report"
	"simmr/internal/telemetry"
)

type renderer interface {
	Render(io.Writer) error
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir    = flag.String("outdir", "results", "output directory")
		only      = flag.String("only", "", "comma-separated subset: fig1,fig2,fig3,table1,fig5,fig6,fig7,fig8,fit,ablation")
		seed      = flag.Int64("seed", 1, "random seed")
		reps      = flag.Int("reps", 400, "repetitions per Figure 7/8 point (paper: 400)")
		fig5Runs  = flag.Int("fig5-runs", 3, "executions per application for Figure 5 (paper: 3)")
		table1Exe = flag.Int("table1-executions", 5, "executions per application for Table I (paper: 5)")
		fig6Jobs  = flag.Int("fig6-jobs", 1148, "production-trace size for Figure 6 (paper: 1148)")
		debugAddr = flag.String("debug-addr", "", "serve Prometheus /metrics, expvar, and pprof on this address (e.g. localhost:6060)")
		cacheDir  = flag.String("cache-dir", "", "replay result cache directory for the Figure 7/8 sweeps; reruns with identical parameters replay nothing")
		cacheMem  = flag.Int("cache-mem", 0, "replay result cache memory budget in MiB (0 with -cache-dir: 64 MiB default; 0 alone: caching off)")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	var tel *telemetry.SimMetrics
	if *debugAddr != "" {
		var err error
		tel, err = startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
	}
	var cache *rcache.Cache
	if *cacheDir != "" || *cacheMem > 0 {
		opts := rcache.Options{Dir: *cacheDir, MemBytes: int64(*cacheMem) << 20}
		if tel != nil {
			opts.Obs = tel
		}
		cache = rcache.New(opts)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type experiment struct {
		name, file string
		run        func() (renderer, error)
	}
	list := []experiment{
		{"fig1", "figure1_waves_128x128.tsv", func() (renderer, error) { return experiments.Figure1(*seed) }},
		{"fig2", "figure2_waves_64x64.tsv", func() (renderer, error) { return experiments.Figure2(*seed) }},
		{"fig3", "figure3_duration_cdfs.tsv", func() (renderer, error) { return experiments.Figure3(*seed) }},
		{"table1", "table1_kl_divergence.tsv", func() (renderer, error) { return experiments.TableI(*table1Exe, *seed) }},
		{"fig5", "figure5a_accuracy_fifo.tsv", func() (renderer, error) { return experiments.Figure5FIFO(*fig5Runs, *seed) }},
		{"fig5", "figure5b_accuracy_minedf.tsv", func() (renderer, error) { return experiments.Figure5MinEDF(*fig5Runs, *seed) }},
		{"fig5", "figure5c_accuracy_maxedf.tsv", func() (renderer, error) { return experiments.Figure5MaxEDF(*fig5Runs, *seed) }},
		{"fig6", "figure6_simulator_speed.tsv", func() (renderer, error) { return experiments.Figure6(*fig6Jobs, nil, *seed) }},
		{"fig7", "figure7_deadlines_testbed.tsv", func() (renderer, error) {
			cfg := experiments.DefaultFigure7Config()
			cfg.Repetitions = *reps
			cfg.Seed = *seed
			cfg.Progress = stderrProgress("fig7")
			cfg.Telemetry = tel
			cfg.Cache = cache
			return experiments.Figure7(cfg)
		}},
		{"fig8", "figure8_deadlines_facebook.tsv", func() (renderer, error) {
			cfg := experiments.DefaultFigure8Config()
			cfg.Repetitions = *reps
			cfg.Seed = *seed
			cfg.Progress = stderrProgress("fig8")
			cfg.Telemetry = tel
			cfg.Cache = cache
			return experiments.Figure8(cfg)
		}},
		{"fit", "facebook_fit_map.tsv", func() (renderer, error) { return experiments.FacebookFit("map", 20000, *seed) }},
		{"fit", "facebook_fit_reduce.tsv", func() (renderer, error) { return experiments.FacebookFit("reduce", 20000, *seed) }},
		{"ablation", "ablation_shuffle_model.tsv", func() (renderer, error) { return experiments.AblationShuffleModel(*seed) }},
		{"ablation", "ablation_minedf_estimator.tsv", func() (renderer, error) { return experiments.AblationMinEDFEstimator(50, *seed) }},
		{"ablation", "ablation_mumak_heartbeat.tsv", func() (renderer, error) { return experiments.AblationMumakHeartbeat(100, *seed) }},
		{"ablation", "ablation_preemption.tsv", func() (renderer, error) { return experiments.AblationPreemption(40, *seed) }},
		{"workload", "workload_validation.tsv", func() (renderer, error) { return experiments.WorkloadValidation(30, *seed) }},
		{"ablation", "delay_scheduling_study.tsv", func() (renderer, error) { return experiments.DelayStudy(24, *seed) }},
	}

	for _, exp := range list {
		if !want(exp.name) {
			continue
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %-7s -> %s ...", exp.name, exp.file)
		res, err := exp.run()
		if err != nil {
			// The progress ticker may own the line (and on an aborted
			// sweep it has just delivered its final, accurate count);
			// rewrite it with the verdict instead of appending to a
			// partial render. The padding clears any longer remnant.
			fmt.Fprintf(os.Stderr, "\rrunning %-7s -> %s FAILED%-24s\n", exp.name, exp.file, "")
			return fmt.Errorf("%s: %w", exp.name, err)
		}
		path := filepath.Join(*outDir, exp.file)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Render(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: render: %w", exp.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, " done in %.1fs\n", time.Since(start).Seconds())
	}
	if cache != nil {
		// Honest totals: each sweep repetition generates its own trace,
		// so a first run is all misses — the hits arrive when the same
		// figure reruns with identical parameters.
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", st.Hits, st.Misses)
	}
	// Consolidate everything generated so far into one reviewable file.
	reportPath := filepath.Join(*outDir, "REPORT.md")
	if err := report.WriteFile(*outDir, reportPath); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", reportPath)
	return nil
}

// stderrProgress renders a sweep's cell completion on stderr as a
// rewriting ticker. Per parallel.ProgressFunc's contract the callback
// may arrive concurrently with out-of-order done values, so it renders
// the max seen under a mutex; the rate bound keeps it off the worker
// pool's critical path.
func stderrProgress(name string) parallel.ProgressFunc {
	var mu sync.Mutex
	maxDone := 0
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done <= maxDone {
			return
		}
		maxDone = done
		// Rewrites the "running fig7 -> file ..." line; the caller's
		// " done in Xs" suffix lands after the final (total/total) tick.
		fmt.Fprintf(os.Stderr, "\rrunning %-7s %d/%d cells ...", name, done, total)
	}
}
