package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"simmr/internal/obs"
	"simmr/internal/sched"
	"simmr/internal/synth"
	"simmr/internal/trace"
)

// This file is the correctness oracle for the BatchPolicy fast path
// (DESIGN.md §11): every indexed policy is replayed against the
// reference scan on the same trace and must be byte-identical — same
// JobOutcomes, same makespan, same event count, and the same
// observability event sequence in the same order. The scan path is the
// paper's semantics; any divergence is a fast-path bug by definition.

// diffPolicies returns the scan policies with indexed equivalents, as
// factories (indexed policies are stateful — one instance per engine).
func diffPolicies() []struct {
	name string
	mk   func() sched.Policy
} {
	return []struct {
		name string
		mk   func() sched.Policy
	}{
		{"FIFO", func() sched.Policy { return sched.FIFO{} }},
		{"MaxEDF", func() sched.Policy { return sched.MaxEDF{} }},
		{"MinEDF-avg", func() sched.Policy { return sched.MinEDF{} }},
		{"MinEDF-low", func() sched.Policy { return sched.MinEDF{Estimate: sched.EstimatorLow} }},
		{"MinEDF-up", func() sched.Policy { return sched.MinEDF{Estimate: sched.EstimatorUp} }},
		{"Fair", func() sched.Policy { return sched.Fair{} }},
		{"Capacity", func() sched.Policy { return sched.Capacity{Shares: []float64{3, 1, 2}} }},
	}
}

// replayRecorded runs one replay with a recording sink attached.
func replayRecorded(t *testing.T, cfg Config, tr *trace.Trace, p sched.Policy) (*Result, *obs.RecordSink) {
	t.Helper()
	sink := &obs.RecordSink{}
	cfg.Sink = sink
	res, err := Run(cfg, tr, p)
	if err != nil {
		t.Fatalf("%s replay: %v", p.Name(), err)
	}
	return res, sink
}

// assertIdenticalReplays compares the scan and indexed replays of one
// (cfg, trace, policy) cell down to the observability stream.
func assertIdenticalReplays(t *testing.T, cfg Config, tr *trace.Trace, mk func() sched.Policy) {
	t.Helper()
	scanPolicy := mk()
	indexedPolicy := sched.Indexed(mk())
	if _, ok := indexedPolicy.(sched.BatchPolicy); !ok {
		t.Fatalf("Indexed(%s) = %T does not implement BatchPolicy", scanPolicy.Name(), indexedPolicy)
	}
	// Guard against a silently disabled fast path: the engine must have
	// resolved the batch interface at Reset.
	e, err := New(cfg, tr, indexedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if e.batch == nil {
		t.Fatalf("engine did not select the batch fast path for %T", indexedPolicy)
	}

	scanRes, scanSink := replayRecorded(t, cfg, tr, scanPolicy)
	idxRes, idxSink := replayRecorded(t, cfg, tr, indexedPolicy)

	if scanRes.Events != idxRes.Events || scanRes.Makespan != idxRes.Makespan {
		t.Fatalf("%s: events %d vs %d, makespan %v vs %v",
			scanPolicy.Name(), scanRes.Events, idxRes.Events, scanRes.Makespan, idxRes.Makespan)
	}
	if !reflect.DeepEqual(scanRes.Jobs, idxRes.Jobs) {
		for i := range scanRes.Jobs {
			if !reflect.DeepEqual(scanRes.Jobs[i], idxRes.Jobs[i]) {
				t.Fatalf("%s: job %d outcome diverged:\n scan    %+v\n indexed %+v",
					scanPolicy.Name(), scanRes.Jobs[i].ID, scanRes.Jobs[i], idxRes.Jobs[i])
			}
		}
		t.Fatalf("%s: job outcomes diverged", scanPolicy.Name())
	}
	if len(scanSink.Events) != len(idxSink.Events) {
		t.Fatalf("%s: obs stream length %d vs %d",
			scanPolicy.Name(), len(scanSink.Events), len(idxSink.Events))
	}
	for i := range scanSink.Events {
		if scanSink.Events[i] != idxSink.Events[i] {
			t.Fatalf("%s: obs event %d diverged:\n scan    %+v\n indexed %+v",
				scanPolicy.Name(), i, scanSink.Events[i], idxSink.Events[i])
		}
	}
	if scanSink.Counters != idxSink.Counters {
		t.Fatalf("%s: run counters diverged:\n scan    %+v\n indexed %+v",
			scanPolicy.Name(), scanSink.Counters, idxSink.Counters)
	}
}

// TestDifferentialIndexedVsScan replays every indexable policy on
// multi-tenant traces of increasing concurrency and asserts the fast
// path is byte-identical to the reference scan.
func TestDifferentialIndexedVsScan(t *testing.T) {
	sizes := []int{10, 100, 1000}
	for _, n := range sizes {
		tr, err := synth.MultiTenantTrace(n, rand.New(rand.NewSource(int64(n))))
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range diffPolicies() {
			pc := pc
			t.Run(pc.name+"/"+tr.Name, func(t *testing.T) {
				assertIdenticalReplays(t, DefaultConfig(), tr, pc.mk)
			})
		}
	}
}

// TestDifferentialIndexedVsScan5k is the acceptance-scale tier: all
// indexable policies at 5000 concurrent jobs. Under -race the tier
// drops to 1000 jobs (see raceDetectorEnabled) — the reference scan
// replays are quadratic by design and the detector's overhead would
// dominate the suite without adding coverage over the plain 5k run.
func TestDifferentialIndexedVsScan5k(t *testing.T) {
	n := 5000
	if raceDetectorEnabled {
		n = 1000
	}
	if testing.Short() {
		t.Skip("short mode: 5k differential tier skipped")
	}
	tr, err := synth.MultiTenantTrace(n, rand.New(rand.NewSource(5000)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range diffPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			assertIdenticalReplays(t, DefaultConfig(), tr, pc.mk)
		})
	}
}

// TestDifferentialIndexedPreemption replays the deadline policies with
// map-task preemption enabled, exercising the preemption index (victim
// selection) together with the batch path's OnJobUpdate flow on kills.
func TestDifferentialIndexedPreemption(t *testing.T) {
	tr, err := synth.MultiTenantTrace(600, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PreemptMapTasks = true
	for _, pc := range diffPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			assertIdenticalReplays(t, cfg, tr, pc.mk)
		})
	}
}

// TestDifferentialIndexedAblations runs the shuffle-model ablations and
// a tight-slot configuration through both paths: eligibility churn
// (ReduceReady gates, slot starvation) differs markedly across these,
// and the index must track all of it.
func TestDifferentialIndexedAblations(t *testing.T) {
	tr, err := synth.MultiTenantTrace(300, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []struct {
		name string
		cfg  Config
	}{
		{"tight-slots", Config{MapSlots: 4, ReduceSlots: 2, MinMapPercentCompleted: 0.5}},
		{"no-shuffle", Config{MapSlots: 64, ReduceSlots: 64, MinMapPercentCompleted: 0.05, NoShuffleModel: true}},
		{"no-first-shuffle", Config{MapSlots: 64, ReduceSlots: 64, MinMapPercentCompleted: 0.05, NoFirstShuffleSpecialCase: true}},
		{"spans", Config{MapSlots: 16, ReduceSlots: 16, MinMapPercentCompleted: 0.05, RecordSpans: true}},
	}
	for _, cc := range cfgs {
		for _, pc := range diffPolicies() {
			pc, cc := pc, cc
			t.Run(cc.name+"/"+pc.name, func(t *testing.T) {
				assertIdenticalReplays(t, cc.cfg, tr, pc.mk)
			})
		}
	}
}

// TestDifferentialIndexedSparseIDs replays a hand-built trace whose job
// IDs are non-dense (engine dispatch falls back to the indexOf map) —
// the indexed policies key their own maps by job ID and must not
// assume density either.
func TestDifferentialIndexedSparseIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := &trace.Trace{Name: "sparse-ids"}
	for i := 0; i < 40; i++ {
		tpl := &trace.Template{
			AppName:      "sparse",
			NumMaps:      1 + rng.Intn(4),
			NumReduces:   rng.Intn(2),
			MapDurations: []float64{5, 7, 9, 11},
		}
		tpl.MapDurations = tpl.MapDurations[:tpl.NumMaps]
		if tpl.NumReduces > 0 {
			tpl.TypicalShuffle = []float64{3}
			tpl.FirstShuffle = []float64{2}
			tpl.ReduceDurations = []float64{4}
		}
		job := &trace.Job{
			ID:       i*7 + 3, // sparse, non-zero-based
			Arrival:  float64(i) * 0.25,
			Template: tpl,
		}
		if i%2 == 0 {
			job.Deadline = job.Arrival + 50 + float64(rng.Intn(100))
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, pc := range diffPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			assertIdenticalReplays(t, DefaultConfig(), tr, pc.mk)
		})
	}
}

// TestIndexedEngineReuseDeterministic re-runs one engine + one indexed
// policy instance through Reset and asserts the second replay is
// byte-identical — the ResetQueue leg of the engine-reuse contract.
func TestIndexedEngineReuseDeterministic(t *testing.T) {
	tr, err := synth.MultiTenantTrace(200, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range diffPolicies() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			p := sched.Indexed(pc.mk())
			cfg := DefaultConfig()
			cfg.PreemptMapTasks = true
			e, err := New(cfg, tr, p)
			if err != nil {
				t.Fatal(err)
			}
			first, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Reset(cfg, tr, p); err != nil {
				t.Fatal(err)
			}
			second, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatal("reused engine + indexed policy diverged from first run")
			}
		})
	}
}
