package sched

import "math"

// Policy fingerprints give the replay result cache (internal/rcache) a
// stable 64-bit identity for every built-in policy: two policies with
// the same fingerprint MUST make identical scheduling decisions on
// every input, because cache keys built from the fingerprint treat
// their results as interchangeable. That is why the Indexed variants
// return their reference policy's fingerprint — the differential suite
// pins them byte-identical — and why stateful or caller-extended
// policies (DynamicPriority, Capacity with a custom QueueOf) refuse to
// fingerprint at all: a wrong cache hit is a silent correctness bug,
// a bypass is just a slower replay.
//
// The version suffix in each tag ("/v1") is the invalidation lever: any
// behavior-affecting change to a policy must bump its tag, which the
// golden table in fingerprint_test.go turns into a conscious decision.

// Fingerprinter is implemented by policies whose scheduling behavior is
// a pure function of their configuration. Fingerprint returns a stable
// identity and true, or ok=false when the policy cannot guarantee one
// (hidden state, caller-supplied functions) and must bypass caching.
type Fingerprinter interface {
	Fingerprint() (uint64, bool)
}

// FingerprintOf returns p's stable fingerprint, or ok=false when p does
// not implement Fingerprinter (custom policies) or declines to provide
// one. Callers must treat ok=false as "never cache".
func FingerprintOf(p Policy) (uint64, bool) {
	f, ok := p.(Fingerprinter)
	if !ok {
		return 0, false
	}
	return f.Fingerprint()
}

// fp64 is a FNV-1a accumulator, the same idiom trace.Hash uses.
type fp64 uint64

const (
	fpOffset fp64   = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

func (h *fp64) byte(b byte) {
	*h = fp64((uint64(*h) ^ uint64(b)) * fpPrime)
}

func (h *fp64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fp64) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *fp64) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.u64(uint64(len(s)))
}

// fpTag hashes a versioned policy tag.
func fpTag(tag string) fp64 {
	h := fpOffset
	h.str(tag)
	return h
}

// Fingerprint identifies FIFO: no parameters.
func (FIFO) Fingerprint() (uint64, bool) { return uint64(fpTag("sched.FIFO/v1")), true }

// Fingerprint identifies MaxEDF: no parameters.
func (MaxEDF) Fingerprint() (uint64, bool) { return uint64(fpTag("sched.MaxEDF/v1")), true }

// Fingerprint identifies MinEDF folded with its estimator: the three
// estimator variants schedule differently and must never share entries.
func (p MinEDF) Fingerprint() (uint64, bool) {
	h := fpTag("sched.MinEDF/v1")
	h.u64(uint64(p.Estimate))
	return uint64(h), true
}

// Fingerprint identifies Fair: no parameters.
func (Fair) Fingerprint() (uint64, bool) { return uint64(fpTag("sched.Fair/v1")), true }

// Fingerprint identifies Capacity by its share vector. A caller-supplied
// QueueOf is an arbitrary function the cache cannot see inside, so such
// configurations decline to fingerprint and bypass caching.
func (p Capacity) Fingerprint() (uint64, bool) {
	if p.QueueOf != nil {
		return 0, false
	}
	h := fpTag("sched.Capacity/v1")
	h.u64(uint64(len(p.Shares)))
	for _, s := range p.Shares {
		h.f64(s)
	}
	return uint64(h), true
}

// DynamicPriority mutates its Budgets as it schedules: identical
// configurations diverge as soon as state accumulates, so it always
// declines and bypasses the cache.
func (*DynamicPriority) Fingerprint() (uint64, bool) { return 0, false }

// The Indexed variants are pinned byte-identical to their reference
// policies by the differential suite, so they share the reference
// fingerprint — a sweep run with Indexed(MaxEDF{}) hits entries cached
// by MaxEDF{} and vice versa.

func (*IndexedFIFO) Fingerprint() (uint64, bool)   { return FIFO{}.Fingerprint() }
func (*IndexedMaxEDF) Fingerprint() (uint64, bool) { return MaxEDF{}.Fingerprint() }
func (p *IndexedMinEDF) Fingerprint() (uint64, bool) {
	return p.scan().Fingerprint()
}
func (*IndexedFair) Fingerprint() (uint64, bool) { return Fair{}.Fingerprint() }
func (p *IndexedCapacity) Fingerprint() (uint64, bool) {
	return p.cfg.Fingerprint()
}
