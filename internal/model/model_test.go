package model

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"simmr/internal/trace"
)

func profileFor(t *testing.T) trace.Profile {
	t.Helper()
	tpl := &trace.Template{
		AppName: "p", NumMaps: 100, NumReduces: 20,
		MapDurations:    constSlice(100, 10),
		FirstShuffle:    constSlice(20, 4),
		TypicalShuffle:  constSlice(20, 6),
		ReduceDurations: constSlice(20, 3),
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tpl.Profile()
}

func constSlice(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestStageBoundsKnownValues(t *testing.T) {
	b := StageBounds(10, 2, 5, 8)
	if b.Low != 25 {
		t.Fatalf("low = %v, want n*avg/k = 25", b.Low)
	}
	if b.Up != 9*5/2.0+8 {
		t.Fatalf("up = %v, want (n-1)*avg/k + max = 30.5", b.Up)
	}
	if b.Avg() != (25+30.5)/2 {
		t.Fatalf("avg = %v", b.Avg())
	}
}

func TestStageBoundsDegenerate(t *testing.T) {
	if b := StageBounds(0, 4, 5, 8); b.Low != 0 || b.Up != 0 {
		t.Fatalf("zero tasks: %+v", b)
	}
	if b := StageBounds(4, 0, 5, 8); b.Low != 0 || b.Up != 0 {
		t.Fatalf("zero slots: %+v", b)
	}
}

// Greedy simulation: assign each task to the slot that frees earliest,
// then check the analytic bounds contain the actual makespan. This is
// the theorem the whole MinEDF sizing rests on.
func TestStageBoundsContainGreedyMakespanProperty(t *testing.T) {
	prop := func(rawDur []uint16, rawK uint8) bool {
		k := int(rawK%16) + 1
		if len(rawDur) == 0 {
			return true
		}
		durs := make([]float64, len(rawDur))
		var sum, max float64
		for i, d := range rawDur {
			durs[i] = float64(d%1000) + 1
			sum += durs[i]
			if durs[i] > max {
				max = durs[i]
			}
		}
		avg := sum / float64(len(durs))
		makespan := greedyMakespan(durs, k)
		b := StageBounds(len(durs), k, avg, max)
		const eps = 1e-9
		return b.Low <= makespan+eps && makespan <= b.Up+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func greedyMakespan(durs []float64, k int) float64 {
	slots := make([]float64, k)
	for _, d := range durs {
		// earliest finishing slot
		mi := 0
		for i := 1; i < k; i++ {
			if slots[i] < slots[mi] {
				mi = i
			}
		}
		slots[mi] += d
	}
	var max float64
	for _, s := range slots {
		if s > max {
			max = s
		}
	}
	return max
}

func TestJobBoundsOrdering(t *testing.T) {
	p := profileFor(t)
	b := JobBounds(p, 10, 5)
	if b.Low <= 0 || b.Up < b.Low {
		t.Fatalf("bounds disordered: %+v", b)
	}
	est := Estimate(p, 10, 5)
	if est < b.Low || est > b.Up {
		t.Fatalf("estimate %v outside bounds %+v", est, b)
	}
}

func TestMoreSlotsNeverSlower(t *testing.T) {
	p := profileFor(t)
	prev := Estimate(p, 1, 1)
	for s := 2; s <= 50; s++ {
		cur := Estimate(p, s, s)
		if cur > prev+1e-9 {
			t.Fatalf("estimate increased with more slots at s=%d: %v -> %v", s, prev, cur)
		}
		prev = cur
	}
}

func TestCoeffsEvalMapOnly(t *testing.T) {
	c := Coeffs{A: 10, B: 5, C: 2}
	// no reduces: B term must vanish
	if got := c.Eval(10, 0, 5, 0); got != 10*10/5.0+2 {
		t.Fatalf("map-only eval = %v", got)
	}
}

func TestMinimalSlotsMeetsDeadline(t *testing.T) {
	p := profileFor(t)
	maxM, maxR := 64, 64
	full := Estimate(p, minIntT(maxM, p.NumMaps), minIntT(maxR, p.NumReduces))
	for _, df := range []float64{1.05, 1.5, 2, 3, 10} {
		deadline := full * df
		a := MinimalSlots(p, deadline, maxM, maxR)
		if !a.Feasible {
			t.Fatalf("df=%v: expected feasible, got %+v (full=%v)", df, a, full)
		}
		if got := Estimate(p, a.MapSlots, a.ReduceSlots); got > deadline+1e-9 {
			t.Fatalf("df=%v: allocation %+v misses deadline: %v > %v", df, a, got, deadline)
		}
	}
}

func TestMinimalSlotsIsMinimal(t *testing.T) {
	// Exhaustive check on a small instance: no allocation with fewer
	// total slots meets the deadline.
	p := profileFor(t)
	deadline := Estimate(p, 64, 20) * 2
	a := MinimalSlots(p, deadline, 64, 64)
	if !a.Feasible {
		t.Fatal("expected feasible")
	}
	best := 1 << 30
	for sm := 1; sm <= 64; sm++ {
		for sr := 1; sr <= 20; sr++ {
			if Estimate(p, sm, sr) <= deadline && sm+sr < best {
				best = sm + sr
			}
		}
	}
	if a.Total() != best {
		t.Fatalf("MinimalSlots total %d, exhaustive minimum %d (alloc %+v)", a.Total(), best, a)
	}
}

func TestMinimalSlotsRelaxedDeadlineUsesFewerSlots(t *testing.T) {
	p := profileFor(t)
	full := Estimate(p, 64, 20)
	tight := MinimalSlots(p, full*1.1, 64, 64)
	loose := MinimalSlots(p, full*4, 64, 64)
	if loose.Total() > tight.Total() {
		t.Fatalf("relaxed deadline should not need more slots: tight=%+v loose=%+v", tight, loose)
	}
	if loose.Total() == tight.Total() {
		t.Logf("warning: totals equal (%d); deadline spread may be too small", loose.Total())
	}
}

func TestMinimalSlotsInfeasibleReturnsMax(t *testing.T) {
	p := profileFor(t)
	a := MinimalSlots(p, 0.001, 64, 64)
	if a.Feasible {
		t.Fatal("impossible deadline reported feasible")
	}
	if a.MapSlots != 64 || a.ReduceSlots != 20 {
		t.Fatalf("infeasible should grant clamped max: %+v", a)
	}
}

func TestMinimalSlotsClampsToTaskCounts(t *testing.T) {
	p := profileFor(t) // 100 maps, 20 reduces
	a := MinimalSlots(p, 1e9, 500, 500)
	if a.MapSlots > 100 || a.ReduceSlots > 20 {
		t.Fatalf("allocation exceeds task counts: %+v", a)
	}
}

func TestMinimalSlotsMapOnlyJob(t *testing.T) {
	tpl := &trace.Template{AppName: "m", NumMaps: 50, MapDurations: constSlice(50, 4)}
	p := tpl.Profile()
	a := MinimalSlots(p, 40, 64, 64)
	if a.ReduceSlots != 0 {
		t.Fatalf("map-only job got reduce slots: %+v", a)
	}
	if !a.Feasible {
		t.Fatalf("40s deadline with 50x4s maps should be feasible: %+v", a)
	}
	// need ceil(50*4/40) = 5 map slots
	if got := Estimate(p, a.MapSlots, 0); got > 40 {
		t.Fatalf("allocation misses deadline: %v", got)
	}
}

// Property: MinimalSlots always returns an in-range allocation and, when
// feasible, meets the deadline.
func TestMinimalSlotsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		nm := rng.Intn(200) + 1
		nr := rng.Intn(50)
		tpl := &trace.Template{
			AppName: "r", NumMaps: nm, NumReduces: nr,
			MapDurations: randSlice(nm, 1, 30, rng),
		}
		if nr > 0 {
			tpl.FirstShuffle = randSlice(nr, 1, 10, rng)
			tpl.TypicalShuffle = randSlice(nr, 1, 10, rng)
			tpl.ReduceDurations = randSlice(nr, 1, 10, rng)
		}
		p := tpl.Profile()
		maxM, maxR := rng.Intn(64)+1, rng.Intn(64)+1
		deadline := rng.Float64() * 500
		a := MinimalSlots(p, deadline, maxM, maxR)
		if a.MapSlots < 1 || a.MapSlots > minIntT(maxM, nm) {
			t.Fatalf("trial %d: map slots out of range: %+v", trial, a)
		}
		if nr == 0 && a.ReduceSlots != 0 {
			t.Fatalf("trial %d: reduce slots for map-only job", trial)
		}
		if nr > 0 && (a.ReduceSlots < 1 || a.ReduceSlots > minIntT(maxR, nr)) {
			t.Fatalf("trial %d: reduce slots out of range: %+v", trial, a)
		}
		if a.Feasible && Estimate(p, a.MapSlots, a.ReduceSlots) > deadline+1e-9 {
			t.Fatalf("trial %d: feasible allocation misses deadline", trial)
		}
	}
}

func randSlice(n int, lo, hi float64, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = lo + rng.Float64()*(hi-lo)
	}
	return s
}

func TestAllocationsOnHyperbolaEquivalent(t *testing.T) {
	// "All integral points on this hyperbola are possible allocations ...
	// which result in meeting the same deadline": walking the hyperbola,
	// estimates stay at or under the deadline.
	p := profileFor(t)
	deadline := Estimate(p, 20, 10) // pick a point, use its estimate as D
	var totals []int
	for sm := 1; sm <= 100; sm++ {
		for sr := 1; sr <= 20; sr++ {
			if Estimate(p, sm, sr) <= deadline {
				totals = append(totals, sm+sr)
				break // smallest sr for this sm
			}
		}
	}
	if len(totals) == 0 {
		t.Fatal("no feasible points found")
	}
	sort.Ints(totals)
	a := MinimalSlots(p, deadline, 100, 20)
	if a.Total() > totals[0] {
		t.Fatalf("Lagrange solution %d beaten by hyperbola scan %d", a.Total(), totals[0])
	}
}

func minIntT(a, b int) int {
	if a < b {
		return a
	}
	return b
}
