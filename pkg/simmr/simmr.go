// Package simmr is the public API of the SimMR MapReduce simulation
// environment, a reproduction of "Play It Again, SimMR!" (Verma,
// Cherkasova, Campbell — IEEE CLUSTER 2011).
//
// SimMR replays execution traces of MapReduce workloads — collected from
// JobTracker history logs or generated synthetically — against pluggable
// scheduling policies, emulating the Hadoop job master's slot-allocation
// decisions at task granularity. A typical session:
//
//	trace, err := simmr.ProfileLogs(logFile)       // MRProfiler
//	res, err := simmr.Replay(simmr.DefaultReplayConfig(), trace, simmr.NewMinEDF())
//	for _, job := range res.Jobs {
//	    fmt.Println(job.Name, job.CompletionTime())
//	}
//
// The package also exposes the surrounding ecosystem built for the
// paper's evaluation: the fine-grained cluster emulator standing in for
// the 66-node testbed, the Mumak-style baseline simulator, the
// Synthetic TraceGen (including the Facebook workload model), the ARIA
// performance-bounds model behind MinEDF, and the persistent trace
// database.
package simmr

import (
	"io"
	"math/rand"
	"net/http"

	"simmr/internal/cluster"
	"simmr/internal/engine"
	"simmr/internal/hadooplog"
	"simmr/internal/model"
	"simmr/internal/mumak"
	"simmr/internal/obs"
	"simmr/internal/profiler"
	"simmr/internal/sched"
	"simmr/internal/stats"
	"simmr/internal/synth"
	"simmr/internal/telemetry"
	"simmr/internal/trace"
	"simmr/internal/tracebin"
	"simmr/internal/workload"
)

// Core trace types.
type (
	// Trace is a replayable MapReduce workload.
	Trace = trace.Trace
	// Job is one traced job: arrival, optional deadline, and template.
	Job = trace.Job
	// Template is the paper's job template: per-phase task durations.
	Template = trace.Template
	// Profile is the compact per-phase (avg, max) job profile.
	Profile = trace.Profile
	// TraceDB is the persistent trace database.
	TraceDB = trace.DB
)

// Scheduling types.
type (
	// Policy is the paper's narrow scheduler interface.
	Policy = sched.Policy
	// JobInfo is the scheduler-visible job state.
	JobInfo = sched.JobInfo
)

// Simulation types.
type (
	// ReplayConfig parameterizes the SimMR engine.
	ReplayConfig = engine.Config
	// ReplayResult is the outcome of a SimMR replay.
	ReplayResult = engine.Result
	// JobOutcome is one replayed job's completion record.
	JobOutcome = engine.JobOutcome
)

// What-if branching types (DESIGN.md §12): pause a replay at any event,
// seal it into an immutable snapshot, and fork copy-on-write branch
// engines off the shared prefix — each branch mutates (inject a job,
// move a deadline, swap the policy) and runs to its own end, byte-
// identical to a from-scratch replay with the same edits. BranchSet is
// the fan-out runtime over these primitives.
type (
	// Engine is a stepable SimMR replay engine: RunEvents pauses it at
	// event boundaries, Snapshot seals it for forking, InjectJob /
	// SetDeadline / SetPolicy edit a paused run.
	Engine = engine.Engine
	// EngineSnapshot is a sealed engine state — the shared fork source.
	EngineSnapshot = engine.Snapshot
	// ForkOptions parameterizes one fork off a snapshot.
	ForkOptions = engine.ForkOptions
	// ForkStats reports a fork's copied-vs-shared byte split.
	ForkStats = engine.ForkStats
)

// NewEngine builds a replay engine for stepwise use — RunEvents,
// Snapshot, Fork. For plain end-to-end replays, Replay and ReplayPool
// remain the shorter path.
func NewEngine(cfg ReplayConfig, tr *Trace, p Policy) (*Engine, error) {
	return engine.New(cfg, tr, p)
}

// Observability types (DESIGN.md §8): set ReplayConfig.Sink to receive
// the engine's typed event stream. A nil sink costs nothing; each
// concurrent engine needs its own sink instance (see SinkFactory).
type (
	// Sink receives typed engine events in handled order.
	Sink = obs.Sink
	// SinkFactory builds one sink per concurrent engine.
	SinkFactory = obs.SinkFactory
	// EngineEvent is one observed engine decision.
	EngineEvent = obs.Event
	// EngineEventKind enumerates the event taxonomy (the paper's seven
	// §III-B event types plus slot and shuffle-patch internals).
	EngineEventKind = obs.Kind
	// RunCounters are the run-level totals delivered at Sink.RunEnd.
	RunCounters = obs.Counters
	// RecordSink captures the raw event stream in memory.
	RecordSink = obs.RecordSink
	// TimelineSink reconstructs a per-slot occupancy timeline
	// (Figure 1/2-style task-progress data).
	TimelineSink = obs.TimelineSink
	// ChromeTraceSink exports a replay as Chrome trace-event JSON for
	// chrome://tracing / Perfetto.
	ChromeTraceSink = obs.ChromeTraceSink
	// MetricsSink tallies concurrency-safe counter snapshots (the
	// cmd/simmr --debug-addr expvar endpoint reads one).
	MetricsSink = obs.MetricsSink
	// SlotSpan is one task execution pinned to a concrete slot.
	SlotSpan = obs.SlotSpan
	// OverlaySpan is one span on a ChromeTraceSink analysis overlay
	// track (see ChromeTraceSink.SetOverlay and AttrOverlay).
	OverlaySpan = obs.OverlaySpan
)

// Telemetry is the sharded sweep-wide metrics registry (DESIGN.md §10):
// counters, max-gauges, and fixed-bucket histograms updated with plain
// atomics on per-worker shards and merged only at scrape time, so a
// single Telemetry shared by every concurrent replay costs no mutex per
// event. Set SweepConfig.Telemetry / BatchConfig.Telemetry (or attach
// EngineSink() to a ReplayConfig) to feed it, and serve it in
// Prometheus text format via MetricsHandler. A nil *Telemetry is valid
// everywhere and costs nothing.
type Telemetry = telemetry.SimMetrics

// NewTelemetry builds the SimMR metric set (task-duration, completion,
// and queue histograms; event, slot, and pool-reuse counters; replay
// wall-time and lifecycle-span histograms) with one registry shard per
// CPU — the parallel worker-pool ceiling.
func NewTelemetry() *Telemetry { return telemetry.NewSimMetrics(0) }

// MetricsHandler serves a Telemetry registry as a Prometheus /metrics
// scrape endpoint (text exposition format 0.0.4).
func MetricsHandler(t *Telemetry) http.Handler { return telemetry.Handler(t.Registry()) }

// NewTimelineSink returns a slot-occupancy timeline recorder.
func NewTimelineSink() *TimelineSink { return obs.NewTimelineSink() }

// NewChromeTraceSink returns a Chrome trace-event recorder.
func NewChromeTraceSink() *ChromeTraceSink { return obs.NewChromeTraceSink() }

// NewMetricsSink returns a concurrency-safe metrics recorder.
func NewMetricsSink() *MetricsSink { return obs.NewMetricsSink() }

// TeeSinks combines sinks into one that forwards every event to each.
func TeeSinks(sinks ...Sink) Sink { return obs.Tee(sinks...) }

// Locality levels of emulated map tasks (node-local / rack-local /
// off-rack).
const (
	NodeLocal = cluster.NodeLocal
	RackLocal = cluster.RackLocal
	OffRack   = cluster.OffRack
)

// Testbed-emulator types.
type (
	// ClusterConfig describes the emulated Hadoop cluster.
	ClusterConfig = cluster.Config
	// ClusterJob is one submission to the emulated cluster.
	ClusterJob = cluster.Job
	// ClusterResult is a full emulation outcome with task spans.
	ClusterResult = cluster.Result
	// WorkloadSpec is a statistical application/dataset description.
	WorkloadSpec = workload.Spec
	// WorkloadApp is one of the paper's six applications.
	WorkloadApp = workload.App
)

// Model types.
type (
	// Bounds is a completion-time [low, up] estimate.
	Bounds = model.Bounds
	// Allocation is a (map slots, reduce slots) grant.
	Allocation = model.Allocation
)

// NewFIFO returns the default FIFO policy.
func NewFIFO() Policy { return sched.FIFO{} }

// NewMaxEDF returns the MaxEDF deadline policy: EDF ordering, maximum
// per-job allocation.
func NewMaxEDF() Policy { return sched.MaxEDF{} }

// NewMinEDF returns the MinEDF deadline policy: EDF ordering, minimal
// model-sized per-job allocation.
func NewMinEDF() Policy { return sched.MinEDF{} }

// NewFair returns the Hadoop Fair Scheduler approximation (extension
// beyond the paper).
func NewFair() Policy { return sched.Fair{} }

// NewDynamicPriority returns the Dynamic Proportional Share scheduler
// approximation (extension beyond the paper): jobs bid per slot from
// spending budgets keyed by job ID.
func NewDynamicPriority(budgets, bids map[int]float64) Policy {
	return sched.NewDynamicPriority(budgets, bids)
}

// MinEDFWithEstimator returns MinEDF sized against a bounds estimator:
// "low", "avg" (paper default), or "up" — the knob behind the estimator
// ablation.
func MinEDFWithEstimator(which string) Policy {
	switch which {
	case "low":
		return sched.MinEDF{Estimate: sched.EstimatorLow}
	case "up":
		return sched.MinEDF{Estimate: sched.EstimatorUp}
	default:
		return sched.MinEDF{}
	}
}

// NewCapacity returns the Capacity scheduler approximation with the
// given queue shares (extension beyond the paper).
func NewCapacity(shares []float64) Policy { return sched.Capacity{Shares: shares} }

// Indexed returns the sub-linear indexed equivalent of a built-in
// policy (FIFO, MaxEDF, MinEDF, Fair, Capacity): the engine detects the
// fast path and hands out all free slots per allocation round through
// incrementally maintained ordered indexes instead of one O(active-jobs)
// scan per slot. Simulated outcomes are byte-identical to the reference
// policy (the engine's differential suite enforces this); only the
// lookup cost changes — worth it from a few hundred concurrently active
// jobs up. Policies without an indexed form are returned unchanged.
//
// The returned policy is stateful: use one instance per engine, and
// with SweepConfig use PolicyFactory, never a shared Policy.
func Indexed(p Policy) Policy { return sched.Indexed(p) }

// DefaultReplayConfig returns the paper's validation setup: 64 map and
// 64 reduce slots, Hadoop-style 5% reduce slowstart.
func DefaultReplayConfig() ReplayConfig { return engine.DefaultConfig() }

// Replay runs the SimMR Simulator Engine over a trace with a policy.
func Replay(cfg ReplayConfig, tr *Trace, p Policy) (*ReplayResult, error) {
	return engine.Run(cfg, tr, p)
}

// ReplayPool caches simulator engines for reuse across replays. A
// caller replaying many traces back to back (what-if loops, Monte
// Carlo repetitions, services replaying per-request) calls
// pool.Run(cfg, tr, policy) instead of Replay and skips rebuilding the
// engine's working set — event-queue slab, free list, per-job state —
// on every run. The zero value is ready; safe for concurrent use;
// results are byte-identical to Replay. CapacitySweep and ReplayBatch
// pool engines internally already.
type ReplayPool = engine.Pool

// MumakConfig parameterizes the Mumak-style baseline simulator.
type MumakConfig = mumak.Config

// MumakResult is the Mumak baseline's outcome.
type MumakResult = mumak.Result

// DefaultMumakConfig mirrors the paper's testbed for the baseline.
func DefaultMumakConfig() MumakConfig { return mumak.DefaultConfig() }

// ReplayMumak runs the Mumak-style baseline (heartbeat-level simulation,
// no shuffle modeling) over the same trace format.
func ReplayMumak(cfg MumakConfig, tr *Trace, p Policy) (*MumakResult, error) {
	return mumak.Run(cfg, tr, p)
}

// ProfileLogs runs MRProfiler over a JobTracker history log stream and
// returns the replayable trace.
func ProfileLogs(r io.Reader) (*Trace, error) { return profiler.FromReader(r) }

// ProfileClusterResult extracts a trace directly from an emulator run.
func ProfileClusterResult(res *ClusterResult) *Trace { return profiler.FromResult(res) }

// DefaultClusterConfig returns the emulated 66-node testbed (§IV-B).
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// RunCluster executes jobs on the emulated testbed. logw may be nil;
// pass NewLogWriter(w) to capture JobTracker-style history logs.
func RunCluster(cfg ClusterConfig, jobs []ClusterJob, p Policy, logw *LogWriter) (*ClusterResult, error) {
	return cluster.Run(cfg, jobs, p, logw)
}

// LogWriter emits Hadoop-0.20-style JobTracker history logs.
type LogWriter = hadooplog.Writer

// NewLogWriter wraps w for history-log emission.
func NewLogWriter(w io.Writer) *LogWriter { return hadooplog.NewWriter(w) }

// PaperApps returns the six applications of the paper's evaluation
// workload, calibrated for the default cluster configuration.
func PaperApps() []WorkloadApp { return workload.Apps() }

// OpenTraceDB opens (creating if needed) a persistent trace database.
func OpenTraceDB(dir string) (*TraceDB, error) { return trace.OpenDB(dir) }

// EncodeTrace and DecodeTrace convert traces to/from their JSON wire
// format.
func EncodeTrace(tr *Trace) ([]byte, error) { return trace.Encode(tr) }

// DecodeTrace parses and validates a JSON trace.
func DecodeTrace(data []byte) (*Trace, error) { return trace.Decode(data) }

// PackTrace encodes a trace into the columnar binary `.strc` image —
// deduplicated templates, one contiguous duration arena, per-section
// CRCs (see FORMATS.md).
func PackTrace(tr *Trace) ([]byte, error) { return tracebin.Pack(tr) }

// WritePackedTrace packs a trace to path atomically.
func WritePackedTrace(path string, tr *Trace) error { return tracebin.WriteFile(path, tr) }

// OpenPackedTrace loads a `.strc` file, memory-mapping it where the
// platform allows so template duration arrays are served zero-copy off
// the file pages. Call Close on the returned trace when done with it
// to release the mapping; replaying, sweeping, and forking it work
// unchanged.
func OpenPackedTrace(path string) (*Trace, error) {
	s, err := tracebin.Open(path)
	if err != nil {
		return nil, err
	}
	return s.Trace(), nil
}

// DecodePackedTrace decodes an in-memory `.strc` image.
func DecodePackedTrace(data []byte) (*Trace, error) {
	s, err := tracebin.Decode(data)
	if err != nil {
		return nil, err
	}
	return s.Trace(), nil
}

// IsPackedTrace reports whether data begins with the `.strc` magic —
// the format sniff loaders use to pick a decoder.
func IsPackedTrace(data []byte) bool { return tracebin.IsPacked(data) }

// StreamConfig describes a streaming synthesis run; TraceStream yields
// its jobs one at a time in arrival order, holding only the template
// pool in memory.
type (
	StreamConfig  = synth.StreamConfig
	TraceStream   = synth.Stream
	WeightedShape = synth.WeightedShape
)

// NewTraceStream starts a streaming synthesis run.
func NewTraceStream(cfg StreamConfig, rng *rand.Rand) (*TraceStream, error) {
	return synth.NewStream(cfg, rng)
}

// PackStream drains a trace stream straight into a packed `.strc` file
// — generation to disk in bounded memory, no materialized trace.
// Returns (jobs written, unique templates interned).
func PackStream(path string, s *TraceStream) (jobs, uniqueTemplates int, err error) {
	st, err := tracebin.WriteSource(path, s.Name(), s)
	return st.Jobs, st.UniqueTemplates, err
}

// ProductionShapes returns the six §IV-E application shapes as a
// streaming shape set.
func ProductionShapes() []WeightedShape { return synth.ProductionShapes() }

// MultiTenantShape returns the small-job multi-tenant shape as a
// streaming shape.
func MultiTenantShape() *JobShape { return synth.MultiTenantShape() }

// JobShape describes a synthetic job class for Synthetic TraceGen.
type JobShape = synth.JobShape

// WorkloadDesc is a declarative JSON workload description (a weighted
// mix of job classes with compact distribution expressions such as
// "lognormal(9.95,1.68)").
type WorkloadDesc = synth.WorkloadDesc

// ParseWorkloadDesc parses and validates a JSON workload description.
func ParseWorkloadDesc(data []byte) (*WorkloadDesc, error) {
	return synth.ParseWorkload(data)
}

// Dist is a univariate duration distribution (see internal/stats for
// the available families).
type Dist = stats.Dist

// ParseDist parses a compact distribution expression like
// "normal(10,2)+1".
func ParseDist(expr string) (Dist, error) { return synth.ParseDist(expr) }

// FacebookShape returns the synthetic Facebook workload model of §V-C
// (LogNormal task durations with the paper's fitted parameters).
func FacebookShape() *JobShape { return synth.FacebookShape() }

// GenerateTrace draws n jobs from a shape with exponential inter-arrival
// times.
func GenerateTrace(shape *JobShape, n int, meanInterArrival float64, rng *rand.Rand) (*Trace, error) {
	return synth.GenerateTrace(shape, n, meanInterArrival, rng)
}

// ProductionTrace generates an n-job workload resembling months of
// cluster history (used by the Figure 6 speed comparison with n = 1148).
func ProductionTrace(n int, rng *rand.Rand) (*Trace, error) {
	return synth.ProductionTrace(n, rng)
}

// MultiTenantTrace generates an n-job burst of small concurrent jobs —
// the multi-tenant regime where nearly all jobs are simultaneously
// active and slot-allocation cost dominates; pair it with Indexed
// policies at scale.
func MultiTenantTrace(n int, rng *rand.Rand) (*Trace, error) {
	return synth.MultiTenantTrace(n, rng)
}

// ScaleTemplate derives a larger-dataset template from a profiled one —
// the paper's stated future work (§VII).
func ScaleTemplate(t *Template, factor float64, scaleReduces bool, rng *rand.Rand) (*Template, error) {
	return trace.ScaleTemplate(t, factor, scaleReduces, rng)
}

// StripIdle compresses inactivity out of a trace, shortening any
// inter-arrival gap beyond maxGap (the paper replays its production
// history "without inactivity periods", §IV-E).
func StripIdle(tr *Trace, maxGap float64) error { return trace.StripIdle(tr, maxGap) }

// CompressArrivals scales all inter-arrival gaps by factor for
// load-scaling what-if replays.
func CompressArrivals(tr *Trace, factor float64) error { return trace.CompressArrivals(tr, factor) }

// JobBounds estimates completion-time bounds for a profile under a slot
// allocation (the ARIA model of §V-A).
func JobBounds(p Profile, mapSlots, reduceSlots int) Bounds {
	return model.JobBounds(p, mapSlots, reduceSlots)
}

// MinimalSlots computes the fewest total slots meeting a relative
// deadline — the allocation MinEDF grants on job arrival.
func MinimalSlots(p Profile, deadline float64, maxMap, maxReduce int) Allocation {
	return model.MinimalSlots(p, deadline, maxMap, maxReduce)
}
