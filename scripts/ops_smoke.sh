#!/usr/bin/env bash
# ops_smoke.sh — live end-to-end check of the ops plane (`make
# smoke-ops`, CI's ops-smoke job).
#
# Runs a real 1000-job capacity sweep with the debug server up, and
# proves, against the live process:
#
#   1. /healthz answers "ok" and /buildinfo reports a version
#   2. /runs lists the sweep, and /runs/latest resolves it
#   3. /runs/{id}/stream delivers at least one SSE progress frame from
#      the run while it is LIVE (outcome "running"), plus the final
#      frame and the end event after completion
#   4. the completed snapshot has outcome "ok" and counted events
#   5. `benchreport -watch` passes against the committed history
#
# The sweep grid is sized so the run takes a couple of seconds: long
# enough for the stream subscription to land mid-run on any machine,
# short enough to keep CI cheap. -linger keeps the process (and its
# /runs state) alive after the sweep so the post-completion checks
# never race the exit.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:6967
BASE="http://$ADDR"
WORK=$(mktemp -d)
trap 'kill $SWEEP_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/tracegen" ./cmd/tracegen
go build -o "$WORK/simmr" ./cmd/simmr
go build -o "$WORK/benchreport" ./cmd/benchreport

"$WORK/tracegen" -kind multitenant -n 1000 -out "$WORK/smoke.json"

# A 12-cell sweep over a 1000-job trace: seconds of work, streamed live.
"$WORK/simmr" -trace "$WORK/smoke.json" -policy maxedf \
    -sweep 8,16,24,32,48,64,96,128,160,192,224,256 \
    -debug-addr "$ADDR" -linger 15s >"$WORK/sweep.out" 2>"$WORK/sweep.err" &
SWEEP_PID=$!

# Wait for the debug server, then for the sweep run to register.
for i in $(seq 1 100); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 $SWEEP_PID 2>/dev/null || { echo "FAIL: sweep exited early"; cat "$WORK/sweep.err"; exit 1; }
    sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q ok || { echo "FAIL: /healthz"; exit 1; }
echo "ok: /healthz"

curl -sf "$BASE/buildinfo" | grep -q '"version"' || { echo "FAIL: /buildinfo"; exit 1; }
echo "ok: /buildinfo"

for i in $(seq 1 100); do
    curl -sf "$BASE/runs" | grep -q '"sweep"' && break
    sleep 0.1
done
curl -sf "$BASE/runs" | grep -q '"sweep"' || { echo "FAIL: /runs never listed the sweep"; exit 1; }
echo "ok: /runs lists the sweep"

RUN_ID=$(curl -sf "$BASE/runs/latest" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$RUN_ID" ] || { echo "FAIL: /runs/latest has no id"; exit 1; }
echo "ok: /runs/latest -> $RUN_ID"

# Tail the SSE stream until the run ends (or 60s); the capture must
# contain a progress frame taken while the run was still live — the
# acceptance bar: at least one progress delta from a running sweep.
curl -sN --max-time 60 "$BASE/runs/$RUN_ID/stream" >"$WORK/stream.txt" || true
grep -q '^event: progress' "$WORK/stream.txt" || { echo "FAIL: no SSE progress frame"; cat "$WORK/stream.txt"; exit 1; }
grep -q '"outcome":"running"' "$WORK/stream.txt" || { echo "FAIL: no live (running) frame in stream"; cat "$WORK/stream.txt"; exit 1; }
grep -q '^event: end' "$WORK/stream.txt" || { echo "FAIL: stream did not end"; cat "$WORK/stream.txt"; exit 1; }
echo "ok: SSE stream delivered $(grep -c '^event: progress' "$WORK/stream.txt") progress frame(s) and the end event"

SNAP=$(curl -sf "$BASE/runs/$RUN_ID")
echo "$SNAP" | grep -Eq '"outcome": *"ok"' || { echo "FAIL: final snapshot not ok: $SNAP"; exit 1; }
echo "$SNAP" | grep -Eq '"events": *[1-9]' || { echo "FAIL: no events counted: $SNAP"; exit 1; }
echo "ok: completed snapshot is outcome=ok with events counted"

wait $SWEEP_PID || { echo "FAIL: sweep exit status"; cat "$WORK/sweep.err"; exit 1; }
grep -q . "$WORK/sweep.out" || { echo "FAIL: sweep produced no output"; exit 1; }
echo "ok: sweep completed cleanly"

"$WORK/benchreport" -watch || { echo "FAIL: benchreport -watch"; exit 1; }
echo "ops-smoke: OK"
