package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTSV(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBasicReport(t *testing.T) {
	dir := t.TempDir()
	writeTSV(t, dir, "b_second.tsv", "# second file\nx\ty\n1\t2\n")
	writeTSV(t, dir, "a_first.tsv", "# first file summary\ncol1\tcol2\nv1\tv2\nv3\tv4\n")

	md, err := Generate(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sections sorted by filename; titles derived from names.
	ai := strings.Index(md, "## a first")
	bi := strings.Index(md, "## b second")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("sections wrong:\n%s", md)
	}
	if !strings.Contains(md, "first file summary") {
		t.Fatal("comment prose missing")
	}
	if !strings.Contains(md, "|col1|col2|") || !strings.Contains(md, "|v1|v2|") {
		t.Fatalf("table missing:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Fatal("markdown separator missing")
	}
}

func TestGenerateTruncatesLongSeries(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	sb.WriteString("t\tv\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("1\t2\n")
	}
	writeTSV(t, dir, "long.tsv", sb.String())
	md, err := Generate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "truncated") {
		t.Fatal("long table not truncated")
	}
	if strings.Count(md, "|1|2|") > maxRowsPerTable {
		t.Fatal("too many rows emitted")
	}
}

func TestGenerateHandlesSubBlocks(t *testing.T) {
	dir := t.TempDir()
	writeTSV(t, dir, "blocks.tsv",
		"# header prose\n## block one\na\tb\n1\t2\n## block two\na\tb\n3\t4\n")
	md, err := Generate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "**block one**") || !strings.Contains(md, "**block two**") {
		t.Fatalf("sub-blocks missing:\n%s", md)
	}
	if !strings.Contains(md, "|3|4|") {
		t.Fatal("second block table missing")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(t.TempDir()); err == nil {
		t.Fatal("empty dir should fail")
	}
	if _, err := Generate("/nonexistent/dir"); err == nil {
		t.Fatal("missing dir should fail")
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	writeTSV(t, dir, "x.tsv", "a\tb\n1\t2\n")
	out := filepath.Join(dir, "REPORT.md")
	if err := WriteFile(dir, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# SimMR experiment report") {
		t.Fatal("report header missing")
	}
}

func TestGenerateOnRealResults(t *testing.T) {
	// The repository ships regenerated results; the report must render
	// them without error when present.
	if _, err := os.Stat("../../results"); err != nil {
		t.Skip("results directory not present")
	}
	md, err := Generate("../../results")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "figure5a") {
		t.Fatal("expected figure5a section")
	}
}
