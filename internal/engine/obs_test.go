package engine

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"simmr/internal/obs"
	"simmr/internal/sched"
	"simmr/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// twoMapOneReduce is the observability reference workload: one job with
// 2 maps and 1 reduce on a 1-map/1-reduce-slot cluster, sized so every
// interesting path fires — slot recycling, the reduce slowstart, a
// first-wave filler, and its map-stage patch.
func twoMapOneReduce() *trace.Trace {
	return oneJobTrace(uniformTemplate(2, 1, 10, 5, 7, 3))
}

// The full hand-computed event sequence of the reference workload. Maps
// serialize on the single slot (0–10, 10–20); the reduce starts at 10
// as a filler and is patched at map-stage end (20) to shuffle end 25,
// finish 28.
func TestSinkObservesExactEventSequence(t *testing.T) {
	inf := math.Inf(1)
	rec := &obs.RecordSink{}
	cfg := Config{MapSlots: 1, ReduceSlots: 1, MinMapPercentCompleted: 0.05, Sink: rec}
	res, err := Run(cfg, twoMapOneReduce(), sched.FIFO{})
	if err != nil {
		t.Fatal(err)
	}

	want := []obs.Event{
		{Time: 0, Kind: obs.KindJobArrival, JobID: 0, Task: -1},
		{Time: 0, Kind: obs.KindMapSlotAlloc, JobID: 0, Task: -1},
		{Time: 0, Kind: obs.KindMapTaskStart, JobID: 0, Task: 0, End: 10},
		{Time: 10, Kind: obs.KindMapTaskFinish, JobID: 0, Task: 0},
		{Time: 10, Kind: obs.KindMapSlotRelease, JobID: 0, Task: 0},
		{Time: 10, Kind: obs.KindMapSlotAlloc, JobID: 0, Task: -1},
		{Time: 10, Kind: obs.KindReduceSlotAlloc, JobID: 0, Task: -1},
		{Time: 10, Kind: obs.KindMapTaskStart, JobID: 0, Task: 1, End: 20},
		{Time: 10, Kind: obs.KindReduceTaskStart, JobID: 0, Task: 0, End: inf, ShuffleEnd: inf},
		{Time: 20, Kind: obs.KindMapTaskFinish, JobID: 0, Task: 1},
		{Time: 20, Kind: obs.KindMapSlotRelease, JobID: 0, Task: 1},
		{Time: 20, Kind: obs.KindMapStageComplete, JobID: 0, Task: -1},
		{Time: 20, Kind: obs.KindFillerPatch, JobID: 0, Task: 0, End: 28, ShuffleEnd: 25},
		{Time: 28, Kind: obs.KindReduceTaskFinish, JobID: 0, Task: 0},
		{Time: 28, Kind: obs.KindReduceSlotRelease, JobID: 0, Task: 0},
		{Time: 28, Kind: obs.KindJobDeparture, JobID: 0, Task: -1},
	}
	if len(rec.Events) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(rec.Events), len(want), rec.Events)
	}
	for i, ev := range rec.Events {
		if ev != want[i] {
			t.Errorf("event %d:\n got %+v\nwant %+v", i, ev, want[i])
		}
	}

	if !rec.Ended {
		t.Fatal("RunEnd not delivered")
	}
	c := rec.Counters
	if c.Events != res.Events || c.Events != 9 {
		t.Errorf("Counters.Events = %d (result %d), want 9", c.Events, res.Events)
	}
	if c.HeapHighWater != 2 {
		t.Errorf("HeapHighWater = %d, want 2", c.HeapHighWater)
	}
	if c.FillerPatches != 1 || c.MapSlotAllocs != 2 || c.ReduceSlotAllocs != 1 || c.Preemptions != 0 {
		t.Errorf("counters %+v", c)
	}
	if c.Jobs != 1 || c.Makespan != 28 {
		t.Errorf("summary counters %+v", c)
	}
}

// Satellite: JobOutcome carries per-job event counts without re-reading
// the trace — and whether or not a sink is attached.
func TestJobOutcomeEventCounts(t *testing.T) {
	cfg := Config{MapSlots: 1, ReduceSlots: 1, MinMapPercentCompleted: 0.05}
	res, err := Run(cfg, twoMapOneReduce(), sched.FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.MapTasksRun != 2 || j.ReduceTasksRun != 1 || j.PreemptedMaps != 0 {
		t.Fatalf("task counts %+v", j)
	}
	// All 9 engine events of this single-job replay belong to the job.
	if j.Events != 9 || uint64(j.Events) != res.Events {
		t.Fatalf("Events = %d, result total %d", j.Events, res.Events)
	}
}

// Preemption must be visible to the sink (KindPreempt + slot release)
// and in the per-job counts, and the killed attempts must not inflate
// MapTasksRun.
func TestSinkObservesPreemption(t *testing.T) {
	tr := &trace.Trace{Jobs: []*trace.Job{
		{Name: "victim", Arrival: 0, Deadline: 100000, Template: uniformTemplate(12, 0, 50, 0, 0, 0)},
		{Name: "urgent", Arrival: 5, Deadline: 300, Template: uniformTemplate(4, 0, 10, 0, 0, 0)},
	}}
	tr.Normalize()
	rec := &obs.RecordSink{}
	cfg := Config{MapSlots: 4, ReduceSlots: 1, MinMapPercentCompleted: 0.05,
		PreemptMapTasks: true, Sink: rec}
	res, err := Run(cfg, tr, sched.MaxEDF{})
	if err != nil {
		t.Fatal(err)
	}
	var preempts int
	for _, ev := range rec.Events {
		if ev.Kind == obs.KindPreempt {
			preempts++
			if ev.JobID != 0 {
				t.Fatalf("preempt victim should be job 0: %+v", ev)
			}
		}
	}
	if preempts == 0 {
		t.Fatal("no KindPreempt events observed")
	}
	if uint64(preempts) != rec.Counters.Preemptions {
		t.Fatalf("preempt events %d != counter %d", preempts, rec.Counters.Preemptions)
	}
	victim := res.Jobs[0]
	if victim.PreemptedMaps != preempts {
		t.Fatalf("JobOutcome.PreemptedMaps = %d, want %d", victim.PreemptedMaps, preempts)
	}
	// Every map still ran to completion exactly once.
	if victim.MapTasksRun != 12 {
		t.Fatalf("victim MapTasksRun = %d, want 12", victim.MapTasksRun)
	}
}

// A sink must not perturb the simulation: identical outcomes with and
// without one attached.
func TestSinkDoesNotAffectReplay(t *testing.T) {
	run := func(sink obs.Sink) *Result {
		cfg := Config{MapSlots: 3, ReduceSlots: 2, MinMapPercentCompleted: 0.05, Sink: sink}
		tr := &trace.Trace{Jobs: []*trace.Job{
			{Arrival: 0, Template: uniformTemplate(7, 2, 9, 4, 6, 2)},
			{Arrival: 3, Template: uniformTemplate(5, 1, 11, 3, 5, 4)},
		}}
		tr.Normalize()
		res, err := Run(cfg, tr, sched.FIFO{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(obs.Tee(&obs.RecordSink{}, obs.NewTimelineSink(), obs.NewChromeTraceSink()))
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(observed)
	if !bytes.Equal(a, b) {
		t.Fatalf("sink changed the replay:\n%s\nvs\n%s", a, b)
	}
}

// The timeline sink's reconstruction must agree with the engine's own
// RecordSpans capture: same task intervals, just pinned to slots.
func TestTimelineSinkMatchesRecordedSpans(t *testing.T) {
	tl := obs.NewTimelineSink()
	cfg := Config{MapSlots: 2, ReduceSlots: 2, MinMapPercentCompleted: 0.05,
		RecordSpans: true, Sink: tl}
	tr := oneJobTrace(uniformTemplate(6, 3, 10, 5, 7, 3))
	res, err := Run(cfg, tr, sched.FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	job := res.Jobs[0]
	var mapSpans, reduceSpans int
	for _, sp := range tl.Spans() {
		if sp.Reduce {
			reduceSpans++
			got := job.ReduceSpans[sp.Task]
			if sp.Start != got.Start || sp.End != got.End || sp.ShuffleEnd != got.ShuffleEnd {
				t.Errorf("reduce %d: timeline %+v vs engine %+v", sp.Task, sp, got)
			}
		} else {
			mapSpans++
			got := job.MapSpans[sp.Task]
			if sp.Start != got.Start || sp.End != got.End {
				t.Errorf("map %d: timeline %+v vs engine %+v", sp.Task, sp, got)
			}
		}
		if sp.Slot < 0 || sp.Slot > 1 {
			t.Errorf("slot %d out of range for a 2-slot class", sp.Slot)
		}
	}
	if mapSpans != 6 || reduceSpans != 3 {
		t.Fatalf("span counts %d/%d, want 6/3", mapSpans, reduceSpans)
	}
	if m, r := tl.Slots(); m != 2 || r != 2 {
		t.Fatalf("peak slots %d/%d, want 2/2", m, r)
	}
}

// Golden file: the Chrome trace-event export of the two-job FIFO
// example must be stable byte for byte (and valid JSON — checked by
// the decode). Regenerate with `go test ./internal/engine -run Golden -update`.
func TestChromeTraceGoldenTwoJobFIFO(t *testing.T) {
	ct := obs.NewChromeTraceSink()
	cfg := Config{MapSlots: 2, ReduceSlots: 1, MinMapPercentCompleted: 0.05, Sink: ct}
	tr := &trace.Trace{Name: "two-job-fifo", Jobs: []*trace.Job{
		{Name: "alpha", Arrival: 0, Template: uniformTemplate(3, 1, 10, 5, 7, 4)},
		{Name: "beta", Arrival: 5, Template: uniformTemplate(2, 1, 8, 3, 6, 2)},
	}}
	tr.Normalize()
	if _, err := Run(cfg, tr, sched.FIFO{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace_two_job_fifo.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
	if !json.Valid(want) {
		t.Fatal("golden file is not valid JSON")
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &file); err != nil {
		t.Fatal(err)
	}
	// 3 metadata + 7 task spans + instants (2 arrivals, 2 departures,
	// 2 map-stage completions) = at least 16 events.
	if len(file.TraceEvents) < 16 {
		t.Fatalf("suspiciously small trace: %d events", len(file.TraceEvents))
	}
}
