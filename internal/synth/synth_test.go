package synth

import (
	"math"
	"math/rand"
	"testing"

	"simmr/internal/stats"
	"simmr/internal/trace"
)

func TestGenerateShapeProducesValidTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shape := &JobShape{
		Name:           "t",
		NumMaps:        stats.Uniform{A: 1, B: 50},
		NumReduces:     stats.Uniform{A: 0, B: 10},
		Map:            stats.Exponential{MeanV: 20},
		TypicalShuffle: stats.Exponential{MeanV: 5},
		Reduce:         stats.Exponential{MeanV: 3},
	}
	for i := 0; i < 200; i++ {
		tpl, err := shape.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := tpl.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestGenerateShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := (&JobShape{Name: "x"}).Generate(rng); err == nil {
		t.Fatal("missing map dists should fail")
	}
	s := &JobShape{
		Name:    "y",
		NumMaps: stats.Constant{V: 3}, Map: stats.Constant{V: 1},
		NumReduces: stats.Constant{V: 2},
	}
	if _, err := s.Generate(rng); err == nil {
		t.Fatal("reduces without shuffle dists should fail")
	}
}

func TestGenerateTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shape := FacebookShape()
	tr, err := GenerateTrace(shape, 50, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 50 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arrivals sorted, roughly exponential with mean 100.
	var gaps []float64
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Arrival < tr.Jobs[i-1].Arrival {
			t.Fatal("arrivals unsorted")
		}
		gaps = append(gaps, tr.Jobs[i].Arrival-tr.Jobs[i-1].Arrival)
	}
	mean := stats.Summarize(gaps).Mean
	if mean < 30 || mean > 300 {
		t.Fatalf("inter-arrival mean %v wildly off 100", mean)
	}
	if _, err := GenerateTrace(shape, 0, 1, rng); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestFacebookDistributionsMatchPaperParameters(t *testing.T) {
	// The sampled log-durations (in ms) must recover the paper's fitted
	// LogNormal parameters.
	rng := rand.New(rand.NewSource(4))
	xs := stats.SampleN(FacebookMapDist(), 20000, rng)
	var meanLog, n float64
	for _, x := range xs {
		meanLog += math.Log(x * 1000)
		n++
	}
	meanLog /= n
	if math.Abs(meanLog-FacebookMapMu) > 0.05 {
		t.Fatalf("map log-mean %v, want %v", meanLog, FacebookMapMu)
	}
}

func TestFacebookShapeGeneratesHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shape := FacebookShape()
	var maxDur float64
	var count int
	for i := 0; i < 50; i++ {
		tpl, err := shape.Generate(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range tpl.MapDurations {
			count++
			if d > maxDur {
				maxDur = d
			}
		}
	}
	// LogNormal(9.95, 1.68) in ms: median ~21 s but the tail reaches
	// thousands of seconds.
	if maxDur < 200 {
		t.Fatalf("no heavy tail: max map duration %v over %d tasks", maxDur, count)
	}
}

func TestProductionTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, err := ProductionTrace(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 100 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	apps := map[string]int{}
	for _, j := range tr.Jobs {
		apps[j.Template.AppName]++
	}
	if len(apps) < 4 {
		t.Fatalf("production trace uses only %d app classes", len(apps))
	}
	if _, err := ProductionTrace(0, rng); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestProductionTraceDeterministic(t *testing.T) {
	a, err := ProductionTrace(30, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProductionTrace(30, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Arrival != b.Jobs[i].Arrival ||
			a.Jobs[i].Template.NumMaps != b.Jobs[i].Template.NumMaps {
			t.Fatalf("job %d differs across same-seed generations", i)
		}
	}
}

func TestDeadlineAssigner(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := &trace.Trace{Jobs: []*trace.Job{
		{Arrival: 0, Template: tpl(4)},
		{Arrival: 10, Template: tpl(4)},
	}}
	tr.Normalize()
	da := &DeadlineAssigner{
		Factor:      3,
		BaselineFor: func(j *trace.Job) float64 { return 100 },
	}
	if err := da.Assign(tr, rng); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		rel := j.Deadline - j.Arrival
		if rel < 100 || rel > 300 {
			t.Fatalf("deadline %v outside [T_J, df*T_J]", rel)
		}
	}
	// Factor 1 pins the deadline exactly.
	da.Factor = 1
	if err := da.Assign(tr, rng); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Deadline-j.Arrival != 100 {
			t.Fatalf("df=1 deadline should equal T_J, got %v", j.Deadline-j.Arrival)
		}
	}
}

func TestDeadlineAssignerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := &trace.Trace{Jobs: []*trace.Job{{Arrival: 0, Template: tpl(2)}}}
	tr.Normalize()
	da := &DeadlineAssigner{Factor: 0.5, BaselineFor: func(*trace.Job) float64 { return 1 }}
	if err := da.Assign(tr, rng); err == nil {
		t.Fatal("factor < 1 should fail")
	}
	da = &DeadlineAssigner{Factor: 2, BaselineFor: func(*trace.Job) float64 { return 0 }}
	if err := da.Assign(tr, rng); err == nil {
		t.Fatal("nonpositive baseline should fail")
	}
}

func tpl(maps int) *trace.Template {
	ds := make([]float64, maps)
	for i := range ds {
		ds[i] = 1
	}
	return &trace.Template{AppName: "t", NumMaps: maps, MapDurations: ds}
}

func TestWrapperStrings(t *testing.T) {
	ms := msDist{stats.Constant{V: 1000}}
	if ms.String() == "" {
		t.Fatal("msDist has empty String")
	}
	sc := scaled{stats.Constant{V: 10}, 0.5}
	if sc.String() == "" {
		t.Fatal("scaled has empty String")
	}
}

func TestScaledAndMsDistWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	base := stats.Constant{V: 1000}
	ms := msDist{base}
	if got := ms.Sample(rng); got != 1 {
		t.Fatalf("msDist sample = %v", got)
	}
	if ms.Mean() != 1 {
		t.Fatalf("msDist mean = %v", ms.Mean())
	}
	if ms.CDF(0.5) != 0 || ms.CDF(1.5) != 1 {
		t.Fatal("msDist CDF wrong")
	}
	sc := scaled{stats.Constant{V: 10}, 0.5}
	if sc.Sample(rng) != 5 || sc.Mean() != 5 {
		t.Fatal("scaled wrapper wrong")
	}
	if sc.CDF(4) != 0 || sc.CDF(6) != 1 {
		t.Fatal("scaled CDF wrong")
	}
}
