package rcache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"simmr/internal/engine"
)

// DefaultMemBytes is the in-memory tier budget when Options.MemBytes
// is unset: enough for thousands of sweep cells at typical trace sizes
// without mattering next to the traces themselves.
const DefaultMemBytes = 64 << 20

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list node, key) charged against the byte budget on top of the
// encoded payload.
const entryOverhead = 128

// diskExt is the on-disk entry suffix; Clear only ever removes files
// carrying it, so pointing -cache-dir at a populated directory cannot
// destroy foreign data.
const diskExt = ".srrc"

// numShards stripes the memory tier's locks; power of two, selected by
// the key's low bits. 16 comfortably exceeds the sweep runtime's
// worker parallelism on the machines this targets.
const numShards = 16

// Observer receives cache events for telemetry. All methods must be
// safe for concurrent use; telemetry.SimMetrics implements it with
// nil-receiver-safe methods.
type Observer interface {
	RCacheHit(disk bool)
	RCacheMiss()
	RCacheEvictions(n uint64)
	RCacheBytes(n int64)
}

// Options configures New.
type Options struct {
	// Dir enables the on-disk tier: one file per entry, written
	// atomically. "" keeps the cache memory-only.
	Dir string
	// MemBytes budgets the in-memory tier; <= 0 means DefaultMemBytes.
	MemBytes int64
	// Obs, when non-nil, receives hit/miss/eviction/bytes events.
	Obs Observer
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits       uint64 `json:"hits"`
	DiskHits   uint64 `json:"disk_hits"` // subset of Hits served by the disk tier
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	MemBytes   int64  `json:"mem_bytes"`
	MemEntries int    `json:"mem_entries"`
}

// Cache is the two-tier store. All methods are safe for concurrent use
// and nil-receiver-safe: a nil *Cache is an always-miss cache, so call
// sites need no branching.
type Cache struct {
	shards   [numShards]shard
	dir      string
	perShard int64
	obs      Observer

	hits      atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64
}

// node is one resident entry in a shard's intrusive LRU list.
type node struct {
	key        Key
	data       []byte
	prev, next *node
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]*node
	head  *node // most recently used
	tail  *node // least recently used
	bytes int64
}

// New builds a cache. If Dir is set it is created eagerly so the first
// Put never races a missing directory; creation failure degrades to
// memory-only rather than erroring — the cache is an accelerator, not
// a dependency.
func New(opts Options) *Cache {
	c := &Cache{dir: opts.Dir, obs: opts.Obs}
	mem := opts.MemBytes
	if mem <= 0 {
		mem = DefaultMemBytes
	}
	c.perShard = mem / numShards
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*node)
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			c.dir = ""
		}
	}
	return c
}

// Get returns the cached Result for k, consulting memory then disk.
// Disk hits are promoted into the memory tier. Every returned Result
// is freshly decoded, so callers may mutate it freely. Any decode or
// CRC failure — either tier — counts as a miss and evicts the bad
// bytes; corruption costs a recompute, never a wrong answer.
func (c *Cache) Get(k Key) (*engine.Result, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[k.Lo&(numShards-1)]
	s.mu.Lock()
	n, ok := s.m[k]
	var data []byte
	if ok {
		s.moveToFront(n)
		data = n.data
	}
	s.mu.Unlock()
	if ok {
		res, err := Decode(data, k)
		if err == nil {
			c.hits.Add(1)
			if c.obs != nil {
				c.obs.RCacheHit(false)
			}
			return res, true
		}
		c.remove(k) // poisoned in-memory entry: drop it, try disk
	}
	if c.dir != "" {
		if img, err := os.ReadFile(c.entryPath(k)); err == nil {
			if res, err := Decode(img, k); err == nil {
				c.insert(k, img)
				c.hits.Add(1)
				c.diskHits.Add(1)
				if c.obs != nil {
					c.obs.RCacheHit(true)
				}
				return res, true
			}
			// Corrupt on disk: delete so the slot heals on next Put.
			os.Remove(c.entryPath(k))
		}
	}
	c.misses.Add(1)
	if c.obs != nil {
		c.obs.RCacheMiss()
	}
	return nil, false
}

// Put stores res under k in both tiers. Failures are silent by design
// (encode overflow, disk errors): the caller already holds the fresh
// result and loses nothing but future hits.
func (c *Cache) Put(k Key, res *engine.Result) {
	if c == nil || res == nil {
		return
	}
	data, err := Encode(k, res)
	if err != nil {
		return
	}
	c.insert(k, data)
	if c.dir != "" {
		writeFileAtomic(c.entryPath(k), data)
	}
}

// insert places encoded bytes into the memory tier, evicting LRU
// entries until the shard fits its budget. Entries larger than the
// whole shard budget skip the memory tier (they would only thrash it);
// the disk tier still serves them.
func (c *Cache) insert(k Key, data []byte) {
	cost := int64(len(data)) + entryOverhead
	if cost > c.perShard {
		return
	}
	s := &c.shards[k.Lo&(numShards-1)]
	var evicted uint64
	s.mu.Lock()
	n, ok := s.m[k]
	if ok {
		delta := cost - (int64(len(n.data)) + entryOverhead)
		n.data = data
		s.bytes += delta
		c.bytes.Add(delta)
		s.moveToFront(n)
	} else {
		n = &node{key: k, data: data}
		s.m[k] = n
		s.pushFront(n)
		s.bytes += cost
		c.bytes.Add(cost)
	}
	// Evict on both paths: an overwrite that grows the payload can push
	// the shard over budget just as a fresh insert can. The just-touched
	// node is at the front and excluded, so the loop always terminates.
	for s.bytes > c.perShard && s.tail != nil && s.tail != n {
		evicted++
		c.evictOldest(s)
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		if c.obs != nil {
			c.obs.RCacheEvictions(evicted)
		}
	}
	if c.obs != nil {
		c.obs.RCacheBytes(c.bytes.Load())
	}
}

// remove drops k from the memory tier (poisoned entry path).
func (c *Cache) remove(k Key) {
	s := &c.shards[k.Lo&(numShards-1)]
	s.mu.Lock()
	if n, ok := s.m[k]; ok {
		s.unlink(n)
		delete(s.m, k)
		cost := int64(len(n.data)) + entryOverhead
		s.bytes -= cost
		c.bytes.Add(-cost)
	}
	s.mu.Unlock()
}

func (c *Cache) evictOldest(s *shard) {
	n := s.tail
	s.unlink(n)
	delete(s.m, n.key)
	cost := int64(len(n.data)) + entryOverhead
	s.bytes -= cost
	c.bytes.Add(-cost)
}

func (s *shard) pushFront(n *node) {
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard) moveToFront(n *node) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		DiskHits:  c.diskHits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		MemBytes:  c.bytes.Load(),
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		st.MemEntries += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return st
}

// Dir reports the disk-tier directory ("" when memory-only).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// DiskInfo scans the disk tier and reports entry count and total
// bytes — the `simmr cache info` backing.
func (c *Cache) DiskInfo() (entries int, bytes int64, err error) {
	if c == nil || c.dir == "" {
		return 0, 0, nil
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), diskExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// Clear empties the memory tier and deletes every disk entry (only
// files carrying the cache's own extension). The first error is
// reported but removal continues past it.
func (c *Cache) Clear() error {
	if c == nil {
		return nil
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		c.bytes.Add(-s.bytes)
		s.m = make(map[Key]*node)
		s.head, s.tail = nil, nil
		s.bytes = 0
		s.mu.Unlock()
	}
	if c.obs != nil {
		c.obs.RCacheBytes(c.bytes.Load())
	}
	if c.dir == "" {
		return nil
	}
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	var first error
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), diskExt) {
			continue
		}
		if err := os.Remove(filepath.Join(c.dir, de.Name())); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Cache) entryPath(k Key) string {
	return filepath.Join(c.dir, k.String()+diskExt)
}

// writeFileAtomic is the tracebin.WriteFile pattern: write a sibling
// temp file, then rename into place, so a reader never observes a
// half-written entry. The temp name is unique per writer so two
// goroutines storing the same key never interleave into one file.
// Best-effort: errors leave no temp litter and no entry, which the
// CRC layer would have caught anyway.
func writeFileAtomic(path string, data []byte) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
	}
}
