package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"simmr/internal/stats"
	"simmr/internal/synth"
)

// FitEntry is one candidate family's goodness of fit.
type FitEntry struct {
	Family string
	KS     float64
}

// FacebookFitResult reproduces the §V-C distribution-fitting step: the
// paper fits 60+ families to the Facebook task-duration CDFs and finds
// LogNormal the best (map KS 0.1056, reduce KS 0.0451). We fit our
// family set to Facebook-like duration samples and verify LogNormal
// wins by KS.
type FacebookFitResult struct {
	Phase                 string // "map" or "reduce"
	SampleSize            int
	Entries               []FitEntry // sorted, best first
	BestIsLogNormal       bool
	FittedMu, FittedSigma float64
}

// FacebookFit runs the fitting for one phase.
func FacebookFit(phase string, sampleSize int, seed int64) (*FacebookFitResult, error) {
	if sampleSize < 100 {
		return nil, fmt.Errorf("experiments: fit needs >= 100 samples")
	}
	var d stats.Dist
	switch phase {
	case "map":
		d = synth.FacebookMapDist()
	case "reduce":
		d = synth.FacebookReduceDist()
	default:
		return nil, fmt.Errorf("experiments: unknown phase %q", phase)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := stats.SampleN(d, sampleSize, rng)
	fits := stats.FitAll(xs)
	if len(fits) == 0 {
		return nil, fmt.Errorf("experiments: no family fitted")
	}
	out := &FacebookFitResult{Phase: phase, SampleSize: sampleSize}
	for _, f := range fits {
		out.Entries = append(out.Entries, FitEntry{Family: fmt.Sprint(f.Dist), KS: f.KS})
	}
	if ln, ok := fits[0].Dist.(stats.LogNormal); ok {
		out.BestIsLogNormal = true
		out.FittedMu, out.FittedSigma = ln.Mu, ln.Sigma
	}
	return out, nil
}

// Render renders the ranked fits.
func (r *FacebookFitResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "# Distribution fitting, Facebook %s-task durations (%d samples)\n",
		r.Phase, r.SampleSize)
	if r.BestIsLogNormal {
		fmt.Fprintf(w, "# best fit: LogNormal(%.4f, %.4f)\n", r.FittedMu, r.FittedSigma)
	}
	rows := make([][]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		rows = append(rows, []string{e.Family, fmt.Sprintf("%.4f", e.KS)})
	}
	return writeRows(w, "family\tks", rows)
}
