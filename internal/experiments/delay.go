package experiments

import (
	"fmt"
	"io"

	"simmr/internal/cluster"
	"simmr/internal/sched"
	"simmr/internal/stats"
	"simmr/internal/workload"
)

// DelayRow reports one delay-scheduling wait setting.
type DelayRow struct {
	WaitSeconds    float64
	NodeLocalFrac  float64
	MeanCompletion float64
	Makespan       float64
}

// DelayStudyResult studies delay scheduling (Zaharia et al., the paper's
// reference [3]) on the emulated testbed: a stream of small jobs under
// the Fair policy, sweeping the locality wait. Expected shape from that
// paper: locality climbs steeply with even a few seconds of wait, at
// negligible completion-time cost.
type DelayStudyResult struct {
	Rows []DelayRow
	Jobs int
}

// DelayStudy sweeps the delay-scheduling wait over a small-job workload.
func DelayStudy(jobs int, seed int64) (*DelayStudyResult, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("experiments: delay study needs >= 1 job")
	}
	mkJobs := func() []cluster.Job {
		var out []cluster.Job
		for i := 0; i < jobs; i++ {
			out = append(out, cluster.Job{
				Name:    "small",
				Arrival: float64(i) * 2,
				Spec: workload.Spec{
					App: "small", Dataset: "d",
					NumMaps: 8, NumReduces: 0, BlockMB: 64,
					MapCompute:    stats.Normal{Mu: 6, Sigma: 1},
					Selectivity:   0,
					ReduceCompute: stats.Constant{V: 1},
				},
			})
		}
		return out
	}
	out := &DelayStudyResult{Jobs: jobs}
	for _, wait := range []float64{0, 1, 3, 5, 10} {
		cfg := TestbedConfig(seed)
		cfg.Workers = 16
		cfg.DelaySchedulingWait = wait
		res, err := cluster.Run(cfg, mkJobs(), sched.Fair{}, nil)
		if err != nil {
			return nil, err
		}
		loc := res.LocalityBreakdown()
		total := 0
		for _, n := range loc {
			total += n
		}
		var meanCompletion float64
		for i := range res.Jobs {
			meanCompletion += res.Jobs[i].CompletionTime()
		}
		meanCompletion /= float64(len(res.Jobs))
		out.Rows = append(out.Rows, DelayRow{
			WaitSeconds:    wait,
			NodeLocalFrac:  float64(loc[cluster.NodeLocal]) / float64(total),
			MeanCompletion: meanCompletion,
			Makespan:       res.Makespan,
		})
	}
	return out, nil
}

// Render writes the sweep.
func (r *DelayStudyResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "# Delay scheduling study: %d small jobs, Fair policy, 16 workers\n", r.Jobs)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f1(row.WaitSeconds), f3(row.NodeLocalFrac), f1(row.MeanCompletion), f1(row.Makespan),
		})
	}
	return writeRows(w, "wait_s\tnode_local_frac\tmean_completion_s\tmakespan_s", rows)
}
