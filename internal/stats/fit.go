package stats

import (
	"math"
	"sort"
)

// FitResult pairs a fitted distribution with its Kolmogorov-Smirnov
// goodness-of-fit value against the sample it was fitted to.
type FitResult struct {
	Dist Dist
	KS   float64
}

// FitFamily identifies one parametric family the fitter knows about.
type FitFamily string

// The distribution families available for fitting. The paper's authors
// fit "more than 60 distributions" with StatAssist; we cover the
// families that matter for heavy-tailed task durations, which is enough
// to demonstrate the paper's conclusion (LogNormal best fits the
// Facebook task-duration CDF).
const (
	FamilyLogNormal   FitFamily = "lognormal"
	FamilyExponential FitFamily = "exponential"
	FamilyNormal      FitFamily = "normal"
	FamilyWeibull     FitFamily = "weibull"
	FamilyGamma       FitFamily = "gamma"
	FamilyUniform     FitFamily = "uniform"
	FamilyPareto      FitFamily = "pareto"
)

// AllFamilies lists every supported family in a stable order.
func AllFamilies() []FitFamily {
	return []FitFamily{
		FamilyLogNormal, FamilyExponential, FamilyNormal,
		FamilyWeibull, FamilyGamma, FamilyUniform, FamilyPareto,
	}
}

// Fit estimates the parameters of one family from a sample using maximum
// likelihood where closed-form, otherwise method of moments. It returns
// nil if the sample cannot support the family (e.g. nonpositive values
// for LogNormal).
func Fit(family FitFamily, xs []float64) Dist {
	if len(xs) < 2 {
		return nil
	}
	s := Summarize(xs)
	switch family {
	case FamilyLogNormal:
		// MLE on log-space moments; requires strictly positive data.
		var mu, n float64
		for _, x := range xs {
			if x <= 0 {
				return nil
			}
			mu += math.Log(x)
			n++
		}
		mu /= n
		var ss float64
		for _, x := range xs {
			d := math.Log(x) - mu
			ss += d * d
		}
		sigma := math.Sqrt(ss / n)
		if sigma == 0 {
			return nil
		}
		return LogNormal{Mu: mu, Sigma: sigma}

	case FamilyExponential:
		if s.Mean <= 0 {
			return nil
		}
		return Exponential{MeanV: s.Mean}

	case FamilyNormal:
		if s.Std == 0 {
			return nil
		}
		return Normal{Mu: s.Mean, Sigma: s.Std}

	case FamilyWeibull:
		// Method of moments via the coefficient of variation: solve
		// CV² = Γ(1+2/k)/Γ(1+1/k)² − 1 for k by bisection.
		if s.Mean <= 0 || s.Std == 0 {
			return nil
		}
		cv2 := (s.Std / s.Mean) * (s.Std / s.Mean)
		f := func(k float64) float64 {
			g1 := math.Gamma(1 + 1/k)
			g2 := math.Gamma(1 + 2/k)
			return g2/(g1*g1) - 1 - cv2
		}
		lo, hi := 0.05, 50.0
		if f(lo) < 0 || f(hi) > 0 {
			return nil // CV outside the representable range
		}
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			if f(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		k := (lo + hi) / 2
		lambda := s.Mean / math.Gamma(1+1/k)
		return Weibull{K: k, Lambda: lambda}

	case FamilyGamma:
		if s.Mean <= 0 || s.Std == 0 {
			return nil
		}
		k := (s.Mean / s.Std) * (s.Mean / s.Std)
		theta := s.Std * s.Std / s.Mean
		return Gamma{K: k, Theta: theta}

	case FamilyUniform:
		if s.Max <= s.Min {
			return nil
		}
		return Uniform{A: s.Min, B: s.Max}

	case FamilyPareto:
		// MLE: xm = min, alpha = n / Σ log(x/xm).
		xm := s.Min
		if xm <= 0 {
			return nil
		}
		var sum float64
		for _, x := range xs {
			sum += math.Log(x / xm)
		}
		if sum <= 0 {
			return nil
		}
		return Pareto{Xm: xm, Alpha: float64(len(xs)) / sum}
	}
	return nil
}

// FitAll fits every supported family to the sample and returns the
// results sorted by ascending KS statistic (best fit first). Families
// the sample cannot support are omitted.
func FitAll(xs []float64) []FitResult {
	var out []FitResult
	for _, fam := range AllFamilies() {
		d := Fit(fam, xs)
		if d == nil {
			continue
		}
		ks := KolmogorovSmirnov(xs, d)
		if math.IsNaN(ks) {
			continue
		}
		out = append(out, FitResult{Dist: d, KS: ks})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].KS < out[j].KS })
	return out
}

// FitBest returns the family with the smallest KS statistic, or nil for
// degenerate samples.
func FitBest(xs []float64) *FitResult {
	all := FitAll(xs)
	if len(all) == 0 {
		return nil
	}
	return &all[0]
}
