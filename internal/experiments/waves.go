package experiments

import (
	"fmt"
	"io"

	"simmr/internal/cluster"
	"simmr/internal/metrics"
	"simmr/internal/sched"
	"simmr/internal/workload"
)

// WavesResult reproduces Figures 1 and 2: the progress of map, shuffle
// and reduce tasks of the §II WordCount example (200 maps, 256 reduces)
// under a restricted slot allocation.
type WavesResult struct {
	MapSlots, ReduceSlots int
	MapWaves, ReduceWaves int
	Completion            float64
	MapStageEnd           float64
	Points                []metrics.TimelinePoint
}

// Figure1 runs the example with 128 map and 128 reduce slots: the paper
// observes 2 map waves and 2 reduce waves.
func Figure1(seed int64) (*WavesResult, error) {
	return wavesExperiment(128, 128, seed)
}

// Figure2 runs the example with 64 map and 64 reduce slots: 4 waves of
// each kind.
func Figure2(seed int64) (*WavesResult, error) {
	return wavesExperiment(64, 64, seed)
}

// WavesWith runs the same experiment with an arbitrary allocation (used
// for what-if exploration beyond the two paper figures).
func WavesWith(mapSlots, reduceSlots int, seed int64) (*WavesResult, error) {
	return wavesExperiment(mapSlots, reduceSlots, seed)
}

func wavesExperiment(mapSlots, reduceSlots int, seed int64) (*WavesResult, error) {
	if mapSlots <= 0 || reduceSlots <= 0 {
		return nil, fmt.Errorf("experiments: waves needs positive slot counts")
	}
	// The paper's testbed for this experiment: 64 workers with 2+2
	// slots; the job is granted mapSlots/reduceSlots of them. Granting a
	// single job N slots is equivalent to a cluster exposing exactly N.
	cfg := TestbedConfig(seed)
	cfg.Workers = 64
	cfg.MapSlotsPerNode = (mapSlots + cfg.Workers - 1) / cfg.Workers
	cfg.ReduceSlotsPerNode = (reduceSlots + cfg.Workers - 1) / cfg.Workers
	if cfg.Workers*cfg.MapSlotsPerNode != mapSlots || cfg.Workers*cfg.ReduceSlotsPerNode != reduceSlots {
		// Allocation not divisible by 64 workers: shrink the worker set.
		cfg.Workers = gcdInt(mapSlots, reduceSlots)
		cfg.MapSlotsPerNode = mapSlots / cfg.Workers
		cfg.ReduceSlotsPerNode = reduceSlots / cfg.Workers
	}

	res, err := runTestbedJob(cfg, cluster.Job{Spec: workload.WordCountExample()}, sched.FIFO{})
	if err != nil {
		return nil, err
	}
	jr := res.Jobs[0]

	var maps, shuffles, reduces, reduceTasks []metrics.Interval
	for _, m := range jr.Maps {
		maps = append(maps, metrics.Interval{Start: m.Start, End: m.End})
	}
	for _, r := range jr.Reduces {
		shuffles = append(shuffles, metrics.Interval{Start: r.Start, End: r.SortEnd})
		reduces = append(reduces, metrics.Interval{Start: r.SortEnd, End: r.End})
		// Wave counting uses full slot occupancy (shuffle + reduce): a
		// reduce task holds its slot through both phases.
		reduceTasks = append(reduceTasks, metrics.Interval{Start: r.Start, End: r.End})
	}
	step := jr.Finish / 200
	if step <= 0 {
		step = 1
	}
	return &WavesResult{
		MapSlots:    mapSlots,
		ReduceSlots: reduceSlots,
		MapWaves:    metrics.Waves(maps),
		ReduceWaves: metrics.Waves(reduceTasks),
		Completion:  jr.CompletionTime(),
		MapStageEnd: jr.MapStageEnd,
		Points:      metrics.Timeline(maps, shuffles, reduces, jr.Finish, step),
	}, nil
}

// Render renders the progress series (time, active maps, shuffles,
// reduces) plus a wave summary.
func (r *WavesResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "# WordCount 200 maps / 256 reduces with %d map and %d reduce slots\n",
		r.MapSlots, r.ReduceSlots)
	fmt.Fprintf(w, "# map waves: %d, reduce waves: %d, map stage end: %.1fs, completion: %.1fs\n",
		r.MapWaves, r.ReduceWaves, r.MapStageEnd, r.Completion)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f1(p.T), fmt.Sprint(p.Map), fmt.Sprint(p.Shuffle), fmt.Sprint(p.Reduce),
		})
	}
	return writeRows(w, "time\tmap\tshuffle\treduce", rows)
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
