package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !approxEqual(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Min() != 1 || e.Max() != 3 || e.Len() != 4 {
		t.Fatalf("min/max/len wrong: %v %v %v", e.Min(), e.Max(), e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 {
		t.Fatal("empty ECDF should be 0 everywhere")
	}
	if !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Fatal("empty ECDF min/max should be NaN")
	}
	if e.Points(10) != nil {
		t.Fatal("empty ECDF should yield no points")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	xs[0] = -100
	if e.At(0) != 0 {
		t.Fatal("ECDF aliased caller's slice")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	pts := e.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Fatalf("endpoints wrong: %+v %+v", pts[0], pts[10])
	}
	if pts[10].Y != 1 {
		t.Fatalf("last point should reach 1: %+v", pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points must be nondecreasing")
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	prop := func(xs []float64, a, b float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		e := NewECDF(xs)
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9.99}, 0, 10, 10)
	if h.Total != 5 {
		t.Fatalf("total = %d", h.Total)
	}
	want := []int{1, 1, 1, 1, 0, 0, 0, 0, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{-5, 15}, 0, 10, 5)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.Total != 2 {
		t.Fatalf("total = %d", h.Total)
	}
}

func TestHistogramProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := SampleN(Exponential{MeanV: 3}, 1000, rng)
	h := NewHistogram(xs, 0, 20, 15)
	var sum float64
	for _, p := range h.Probs() {
		sum += p
	}
	if !approxEqual(sum, 1, 1e-12) {
		t.Fatalf("probs sum to %f", sum)
	}
}

func TestHistogramEmptyProbs(t *testing.T) {
	h := NewHistogram(nil, 0, 1, 3)
	for _, p := range h.Probs() {
		if p != 0 {
			t.Fatal("empty histogram probs should be zero")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(nil, 0, 1, 0) },
		"empty range": func() { NewHistogram(nil, 1, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCommonRange(t *testing.T) {
	lo, hi := CommonRange([]float64{1, 5}, []float64{3, 8})
	if lo != 1 || hi <= 8 {
		t.Fatalf("common range = [%g,%g)", lo, hi)
	}
	lo, hi = CommonRange(nil, nil)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty common range = [%g,%g)", lo, hi)
	}
	// Degenerate: all values identical.
	lo, hi = CommonRange([]float64{4}, []float64{4})
	if hi <= lo {
		t.Fatalf("degenerate range must be nonempty: [%g,%g)", lo, hi)
	}
}
