// Package buildinfo carries link-time build metadata. Version is
// stamped by the Makefile:
//
//	go build -ldflags "-X simmr/internal/buildinfo.Version=$(VERSION)" ./...
//
// and surfaces as the version label of the simmr_build_info gauge that
// every -debug-addr endpoint exports (telemetry.StampBuildInfo).
package buildinfo

// Version identifies the build; "dev" when not stamped at link time.
var Version = "dev"
