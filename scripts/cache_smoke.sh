#!/usr/bin/env bash
# cache_smoke.sh — live end-to-end check of the replay result cache
# (`make smoke-cache`, CI's cache-smoke job).
#
# Runs the same 1000-job capacity sweep twice against one -cache-dir
# and proves, from the CLI surface alone:
#
#   1. the cold pass reports all misses and seeds the cache directory
#   2. `simmr cache info` sees the stored entries
#   3. the warm pass reports 100% hits and 0 misses
#   4. both passes print byte-identical sweep tables (memoization never
#      changes results)
#   5. the warm pass is measurably faster than the cold one
#   6. `simmr cache clear` empties the directory
#
# Binaries are prebuilt into the work dir so `go run` compile time never
# pollutes the cold/warm timing comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
CACHE="$WORK/cache"

go build -o "$WORK/tracegen" ./cmd/tracegen
go build -o "$WORK/simmr" ./cmd/simmr

"$WORK/tracegen" -kind multitenant -n 1000 -out "$WORK/smoke.json"

SWEEP="8,16,24,32,48,64,96,128,160,192,224,256"

t0=$(date +%s%N)
"$WORK/simmr" -trace "$WORK/smoke.json" -policy maxedf -sweep "$SWEEP" \
    -cache-dir "$CACHE" >"$WORK/cold.out"
t1=$(date +%s%N)
COLD_MS=$(( (t1 - t0) / 1000000 ))

grep -q '^cache: 0 hits, 12 misses$' "$WORK/cold.out" || {
    echo "FAIL: cold pass should be 12 misses"; cat "$WORK/cold.out"; exit 1; }
echo "ok: cold pass all misses (${COLD_MS}ms)"

"$WORK/simmr" cache info -cache-dir "$CACHE" | tee "$WORK/info.out"
grep -q ' 12 entries, ' "$WORK/info.out" || {
    echo "FAIL: cache info should report 12 entries"; exit 1; }
echo "ok: cache info sees 12 entries"

t0=$(date +%s%N)
"$WORK/simmr" -trace "$WORK/smoke.json" -policy maxedf -sweep "$SWEEP" \
    -cache-dir "$CACHE" >"$WORK/warm.out"
t1=$(date +%s%N)
WARM_MS=$(( (t1 - t0) / 1000000 ))

grep -q '^cache: 12 hits, 0 misses$' "$WORK/warm.out" || {
    echo "FAIL: warm pass should be 100% hits"; cat "$WORK/warm.out"; exit 1; }
echo "ok: warm pass 100% hits (${WARM_MS}ms)"

# Memoization must be invisible in the output: identical sweep tables.
if ! diff -u "$WORK/cold.out" "$WORK/warm.out" >"$WORK/diff.out"; then
    grep -v '^cache: ' "$WORK/cold.out" >"$WORK/cold.tbl"
    grep -v '^cache: ' "$WORK/warm.out" >"$WORK/warm.tbl"
    diff -u "$WORK/cold.tbl" "$WORK/warm.tbl" || {
        echo "FAIL: warm sweep table differs from cold"; exit 1; }
fi
echo "ok: warm sweep table identical to cold"

# "Measurably faster": the warm pass replays nothing, so even with
# process startup and trace loading it must beat the cold pass outright.
[ "$WARM_MS" -lt "$COLD_MS" ] || {
    echo "FAIL: warm pass (${WARM_MS}ms) not faster than cold (${COLD_MS}ms)"; exit 1; }
echo "ok: warm pass faster (${COLD_MS}ms cold -> ${WARM_MS}ms warm)"

"$WORK/simmr" cache clear -cache-dir "$CACHE"
"$WORK/simmr" cache info -cache-dir "$CACHE" | grep -q ' 0 entries, ' || {
    echo "FAIL: cache clear left entries behind"; exit 1; }
echo "ok: cache clear emptied the directory"

echo "cache-smoke: OK"
