package obs

import (
	"bytes"
	"math"
	"testing"
)

// flightEvents synthesizes a deterministic stream of n events across
// jobs, including a filler reduce start (End = +Inf) so the JSON
// round-trip exercises the null encoding.
func flightEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Time:  float64(i),
			Kind:  Kind(i % int(KindCount)),
			JobID: i % 7,
			Task:  i % 3,
			End:   float64(i) + 10,
		}
	}
	evs[n/2] = Event{Time: float64(n / 2), Kind: KindReduceTaskStart, JobID: 1, Task: 0,
		End: math.Inf(1), ShuffleEnd: math.Inf(1)}
	return evs
}

func TestFlightRecorderRetainsTail(t *testing.T) {
	f := NewFlightRecorder(64)
	evs := flightEvents(200)
	for _, ev := range evs {
		f.Event(ev)
	}
	f.RunEnd(Counters{Events: 200, Jobs: 7, Makespan: 199})
	d := f.Dump("manual")
	if len(d.Events) != 64 {
		t.Fatalf("retained %d events, want 64", len(d.Events))
	}
	if d.Dropped != 200-64 {
		t.Fatalf("dropped = %d, want %d", d.Dropped, 200-64)
	}
	for i, ev := range d.Events {
		want := evs[200-64+i]
		if ev != want {
			t.Fatalf("event %d = %+v, want %+v (oldest-first order broken)", i, ev, want)
		}
	}
	if !d.Ended || d.Counters.Events != 200 {
		t.Fatalf("dump missed RunEnd: ended=%v counters=%+v", d.Ended, d.Counters)
	}
	if got := f.Latest(); got != d {
		t.Fatal("Dump did not publish to Latest")
	}
}

func TestFlightRecorderShortRun(t *testing.T) {
	f := NewFlightRecorder(0)
	for _, ev := range flightEvents(10) {
		f.Event(ev)
	}
	d := f.Dump("manual")
	if len(d.Events) != 10 || d.Dropped != 0 {
		t.Fatalf("short run dump: %d events, %d dropped", len(d.Events), d.Dropped)
	}
}

func TestFlightRecorderTriggerPolled(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Trigger() // from "another goroutine"
	evs := flightEvents(600)
	for i, ev := range evs {
		f.Event(ev)
		if f.Latest() != nil {
			if i >= 1023 {
				t.Fatalf("trigger not served by event %d", i)
			}
			break
		}
	}
	if f.Latest() == nil {
		t.Fatal("trigger never served during 600-event run")
	}
	if f.Latest().Trigger != "trigger" {
		t.Fatalf("trigger cause = %q", f.Latest().Trigger)
	}

	// A trigger arriving in the final stretch is served at RunEnd.
	f2 := NewFlightRecorder(64)
	for _, ev := range flightEvents(10) {
		f2.Event(ev)
	}
	f2.Trigger()
	f2.RunEnd(Counters{Events: 10})
	if f2.Latest() == nil {
		t.Fatal("late trigger not served at RunEnd")
	}
}

func TestFlightRecorderFork(t *testing.T) {
	f := NewFlightRecorder(64)
	prefix := flightEvents(40)
	for _, ev := range prefix {
		f.Event(ev)
	}
	child := f.Fork()
	child.Event(Event{Time: 1000, Kind: KindJobDeparture, JobID: 99, Task: -1})
	f.Event(Event{Time: 2000, Kind: KindPreempt, JobID: 42, Task: 0})

	cd := child.Dump("manual")
	if len(cd.Events) != 41 {
		t.Fatalf("child retained %d events, want prefix 40 + 1", len(cd.Events))
	}
	if cd.Events[40].JobID != 99 {
		t.Fatalf("child tail = %+v, want its own event", cd.Events[40])
	}
	pd := f.Dump("manual")
	if pd.Events[40].JobID != 42 {
		t.Fatalf("parent tail = %+v; fork leaked between rings", pd.Events[40])
	}
}

func TestFlightDumpJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(128)
	f.SetLabel("cell-16x16")
	for _, ev := range flightEvents(100) {
		f.Event(ev)
	}
	f.RunEnd(Counters{Events: 100, Jobs: 7})
	d := f.Dump("deadline-miss")

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFlightDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != "cell-16x16" || back.Trigger != "deadline-miss" {
		t.Fatalf("metadata lost: %+v", back)
	}
	if len(back.Events) != len(d.Events) {
		t.Fatalf("events %d != %d", len(back.Events), len(d.Events))
	}
	for i := range back.Events {
		if back.Events[i] != d.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], d.Events[i])
		}
	}
	if back.PerJob[1] != d.PerJob[1] || back.Counters != d.Counters {
		t.Fatal("per-job counts or counters lost in round trip")
	}
}

func TestFlightDumpChromeTrace(t *testing.T) {
	f := NewFlightRecorder(64)
	// A coherent mini-run: job 0 arrival, map start/finish, departure.
	for _, ev := range []Event{
		{Time: 0, Kind: KindJobArrival, JobID: 0, Task: -1},
		{Time: 1, Kind: KindMapTaskStart, JobID: 0, Task: 0, End: 5},
		{Time: 5, Kind: KindMapTaskFinish, JobID: 0, Task: 0},
		{Time: 6, Kind: KindJobDeparture, JobID: 0, Task: -1},
	} {
		f.Event(ev)
	}
	d := f.Dump("manual")
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("chrome trace missing traceEvents: %s", buf.String())
	}
}

func TestTeeForwardsProgressSampler(t *testing.T) {
	p := &progressRecorder{}
	r := &RecordSink{}
	tee := Tee(r, p)
	ps, ok := tee.(ProgressSampler)
	if !ok {
		t.Fatal("tee with a ProgressSampler member does not sample progress")
	}
	ps.SampleProgress(1.0, 10, 2, 8)
	if len(p.samples) != 1 || p.samples[0] != 2 {
		t.Fatalf("progress not forwarded: %v", p.samples)
	}
	// And the full tee: depth + progress members.
	full := Tee(&depthRecorder{}, p)
	if _, ok := full.(DepthSampler); !ok {
		t.Fatal("full tee lost DepthSampler")
	}
	if _, ok := full.(ProgressSampler); !ok {
		t.Fatal("full tee lost ProgressSampler")
	}
}

// progressRecorder is a minimal Sink + ProgressSampler for tee tests.
type progressRecorder struct {
	RecordSink
	samples []int
}

func (p *progressRecorder) SampleProgress(now float64, events uint64, jobsDone, jobsTotal int) {
	p.samples = append(p.samples, jobsDone)
}

// depthRecorder is a minimal Sink + DepthSampler + ProgressSampler.
type depthRecorder struct {
	RecordSink
	depths []int
}

func (d *depthRecorder) SampleDepth(now float64, depth int) { d.depths = append(d.depths, depth) }
