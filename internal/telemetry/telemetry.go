// Package telemetry is SimMR's sweep-wide metrics layer: a registry of
// counters, max-gauges, and fixed-bucket histograms whose hot path is
// lock-free. Where obs.MetricsSink pays a mutex per event to be
// shareable across engines, a telemetry Registry is sharded — one
// cache-line-padded shard per concurrent writer (sized to the
// internal/parallel worker ceiling, GOMAXPROCS) — and every update is a
// plain atomic add to the writer's own shard. Shards are merged only
// when somebody looks: a Prometheus scrape (WritePrometheus), an expvar
// read, or a Value() call. A shared sweep-wide registry therefore costs
// no cross-core synchronization per event, only per scrape.
//
// The contract mirrors DESIGN.md §10:
//
//   - Registration happens up front (NewSimMetrics builds the full SimMR
//     metric set); updates are wait-free atomic adds; scrapes see a
//     weakly consistent but monotonic view (each slot is read
//     atomically, slots may be skewed by in-flight updates).
//   - Writers pick a shard once (Registry.NextShard, round-robin) and
//     keep it: a per-engine sink holds its shard for its lifetime, so
//     steady-state updates never touch a shared cache line.
//   - Disabled means nil. Code paths guard instrumentation with a
//     single `if tel != nil`; no registry, no cost — `make bench-guard`
//     holds the no-telemetry replay path to BENCH_engine.json.
package telemetry

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// cacheLine is the assumed cache-line size; shard cells are padded to it
// so two writers on different shards never false-share.
const cacheLine = 64

// Registry owns a fixed shard count and the registered metric families,
// in registration order (which is exposition order).
type Registry struct {
	shards int
	next   atomic.Uint32

	mu       sync.Mutex
	families []*family
}

// NewRegistry builds a registry with the given shard count; shards <= 0
// means one per available CPU (runtime.GOMAXPROCS), the ceiling of the
// internal/parallel worker pool.
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return &Registry{shards: shards}
}

// Shards returns the shard count.
func (r *Registry) Shards() int { return r.shards }

// NextShard assigns a shard round-robin. Writers call it once (per
// engine sink, per worker) and reuse the result; two writers that land
// on the same shard stay correct — updates are atomic — they merely
// share a cache line.
func (r *Registry) NextShard() int {
	return int(r.next.Add(1)-1) % r.shards
}

// metricKind tags a family for TYPE lines and sample layout.
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instance inside a family; exactly one of the
// metric pointers (or fn, for scrape-evaluated gauges) is set,
// matching the family kind.
type child struct {
	labels string // pre-rendered `k="v"` pairs, "" for unlabeled
	ctr    *Counter
	mg     *MaxGauge
	h      *Histogram
	fn     func() float64
}

// family is one exposition unit: a metric name with HELP/TYPE emitted
// once and one sample set per child.
type family struct {
	name, help string
	kind       metricKind
	children   []child
}

// register appends a family; registration is cheap and mutex-guarded —
// it happens at setup, never on the hot path.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.families {
		if have.name == f.name {
			panic(fmt.Sprintf("telemetry: duplicate metric family %q", f.name))
		}
	}
	r.families = append(r.families, f)
}

// padCell is one shard's counter cell, padded to a cache line.
type padCell struct {
	v uint64
	_ [cacheLine - 8]byte
}

// Counter is a sharded monotonically increasing counter.
type Counter struct {
	cells []padCell
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{cells: make([]padCell, r.shards)}
	r.register(&family{name: name, help: help, kind: counterKind,
		children: []child{{ctr: c}}})
	return c
}

// NewCounterVec registers one counter per label value under a shared
// family name; the returned slice is in `values` order.
func (r *Registry) NewCounterVec(name, help, label string, values []string) []*Counter {
	f := &family{name: name, help: help, kind: counterKind}
	out := make([]*Counter, len(values))
	for i, v := range values {
		out[i] = &Counter{cells: make([]padCell, r.shards)}
		f.children = append(f.children, child{
			labels: fmt.Sprintf("%s=%q", label, v),
			ctr:    out[i],
		})
	}
	r.register(f)
	return out
}

// Inc adds one to the counter on the given shard.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Add adds n on the given shard.
func (c *Counter) Add(shard int, n uint64) {
	atomic.AddUint64(&c.cells[shard].v, n)
}

// Value merges all shards.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += atomic.LoadUint64(&c.cells[i].v)
	}
	return sum
}

// MaxGauge is a sharded gauge merged by maximum — high-water marks
// (peak simulated time, peak queue population) rather than sums.
type MaxGauge struct {
	cells []padCell // float64 bits
}

// NewMaxGauge registers a max-merged gauge.
func (r *Registry) NewMaxGauge(name, help string) *MaxGauge {
	g := &MaxGauge{cells: make([]padCell, r.shards)}
	r.register(&family{name: name, help: help, kind: gaugeKind,
		children: []child{{mg: g}}})
	return g
}

// NewMaxGaugeLabeled registers a max-merged gauge carrying constant
// pre-rendered labels — the Prometheus `*_info` idiom (a gauge fixed at
// 1 whose labels carry the payload). Labels render in argument order.
func (r *Registry) NewMaxGaugeLabeled(name, help string, labels [][2]string) *MaxGauge {
	g := &MaxGauge{cells: make([]padCell, r.shards)}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = fmt.Sprintf("%s=%q", kv[0], kv[1])
	}
	r.register(&family{name: name, help: help, kind: gaugeKind,
		children: []child{{labels: strings.Join(parts, ","), mg: g}}})
	return g
}

// NewFuncGauge registers a gauge whose value is computed at scrape
// time by fn — the shape for state that already lives elsewhere under
// its own synchronization (the run registry's live count) and would be
// stale or double-tracked as a written gauge. fn must be safe for
// concurrent calls and fast: it runs on every scrape.
func (r *Registry) NewFuncGauge(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: gaugeKind,
		children: []child{{fn: fn}}})
}

// NewFuncGaugeVec registers one scrape-evaluated gauge per label value
// under a shared family name; fn receives the value's index in
// `values` order.
func (r *Registry) NewFuncGaugeVec(name, help, label string, values []string, fn func(i int) float64) {
	f := &family{name: name, help: help, kind: gaugeKind}
	for i, v := range values {
		i := i
		f.children = append(f.children, child{
			labels: fmt.Sprintf("%s=%q", label, v),
			fn:     func() float64 { return fn(i) },
		})
	}
	r.register(f)
}

// Observe raises the shard's cell to v if v is larger. The CAS loop is
// lock-free and, because each writer owns its shard, effectively
// uncontended — retries only happen when two writers share a shard.
func (g *MaxGauge) Observe(shard int, v float64) {
	cell := &g.cells[shard].v
	for {
		old := atomic.LoadUint64(cell)
		if math.Float64frombits(old) >= v {
			return
		}
		if atomic.CompareAndSwapUint64(cell, old, math.Float64bits(v)) {
			return
		}
	}
}

// Value merges all shards by maximum.
func (g *MaxGauge) Value() float64 {
	var max float64
	for i := range g.cells {
		if v := math.Float64frombits(atomic.LoadUint64(&g.cells[i].v)); v > max {
			max = v
		}
	}
	return max
}

// Histogram is a sharded fixed-bucket histogram. Bounds are inclusive
// upper bounds in ascending order (Prometheus `le` semantics); the
// overflow (+Inf) bucket is implicit. Each shard's region holds the
// bucket counts, the observation count, and the sum (float64 bits),
// padded to a cache-line multiple so shards never false-share.
type Histogram struct {
	bounds []float64
	slots  []uint64
	stride int // uint64 slots per shard region
	sumOff int // offset of the sum cell within a region
	cntOff int // offset of the count cell within a region
}

// NewHistogram registers an unlabeled histogram over the given bounds.
// Bounds must be ascending and non-empty.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(r.shards, bounds)
	r.register(&family{name: name, help: help, kind: histogramKind,
		children: []child{{h: h}}})
	return h
}

// NewHistogramVec registers one histogram per label value under a
// shared family name; the returned slice is in `values` order.
func (r *Registry) NewHistogramVec(name, help, label string, values []string, bounds []float64) []*Histogram {
	f := &family{name: name, help: help, kind: histogramKind}
	out := make([]*Histogram, len(values))
	for i, v := range values {
		out[i] = newHistogram(r.shards, bounds)
		f.children = append(f.children, child{
			labels: fmt.Sprintf("%s=%q", label, v),
			h:      out[i],
		})
	}
	r.register(f)
	return out
}

func newHistogram(shards int, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending")
	}
	nb := len(bounds) + 1 // + overflow bucket
	stride := nb + 2      // + sum + count
	// Round the region up to a whole number of cache lines.
	const perLine = cacheLine / 8
	stride = (stride + perLine - 1) / perLine * perLine
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		slots:  make([]uint64, shards*stride),
		stride: stride,
		sumOff: nb,
		cntOff: nb + 1,
	}
}

// Observe records v on the given shard: one bucket increment, one count
// increment, and a CAS float add to the sum — all lock-free, all inside
// the shard's own cache lines.
func (h *Histogram) Observe(shard int, v float64) {
	base := shard * h.stride
	i := 0
	// Linear scan: bucket counts are small (≤ ~16) and the branch
	// predictor learns the distribution; a binary search's unpredictable
	// branches are slower at this size.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddUint64(&h.slots[base+i], 1)
	atomic.AddUint64(&h.slots[base+h.cntOff], 1)
	sum := &h.slots[base+h.sumOff]
	for {
		old := atomic.LoadUint64(sum)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(sum, old, next) {
			return
		}
	}
}

// HistogramSnapshot is a merged point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Buckets holds non-cumulative per-bucket counts; the last entry is
	// the overflow (+Inf) bucket.
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// Snapshot merges all shards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	nb := len(h.bounds) + 1
	s := HistogramSnapshot{Buckets: make([]uint64, nb)}
	for shard := 0; shard*h.stride < len(h.slots); shard++ {
		base := shard * h.stride
		for i := 0; i < nb; i++ {
			s.Buckets[i] += atomic.LoadUint64(&h.slots[base+i])
		}
		s.Sum += math.Float64frombits(atomic.LoadUint64(&h.slots[base+h.sumOff]))
		s.Count += atomic.LoadUint64(&h.slots[base+h.cntOff])
	}
	return s
}

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }
