// Facebook synthetic workload: generate a trace from the LogNormal
// task-duration model the paper fits to Zaharia et al.'s production
// data (§V-C), then ask a what-if question: how do four schedulers
// compare on makespan and mean completion time for the same workload?
//
//	go run ./examples/facebook
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simmr/pkg/simmr"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 80 jobs with 90 s mean inter-arrival: a busy production hour.
	tr, err := simmr.GenerateTrace(simmr.FacebookShape(), 80, 90, rng)
	if err != nil {
		log.Fatal(err)
	}
	maps, reduces := tr.TotalTasks()
	fmt.Printf("generated %d jobs: %d map tasks, %d reduce tasks, %.1f task-hours serial\n\n",
		len(tr.Jobs), maps, reduces, tr.SerialRuntime()/3600)

	policies := []simmr.Policy{
		simmr.NewFIFO(),
		simmr.NewFair(),
		simmr.NewCapacity([]float64{0.6, 0.3, 0.1}),
		simmr.NewMaxEDF(), // without deadlines this degrades to FIFO order
	}
	// One ReplayBatch call replays all four policies concurrently on a
	// worker pool. Every spec shares the same trace: the engine treats
	// traces as read-only, so no clones are needed, and results come
	// back in spec order.
	specs := make([]simmr.ReplaySpec, len(policies))
	for i, p := range policies {
		specs[i] = simmr.ReplaySpec{Name: p.Name(), Trace: tr, Policy: p}
	}
	results, err := simmr.ReplayBatch(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy    makespan    mean-completion  p95-completion")
	for i, res := range results {
		mean, p95 := completionStats(res)
		fmt.Printf("%-9s %8.0f s  %13.0f s  %12.0f s\n", policies[i].Name(), res.Makespan, mean, p95)
	}
	fmt.Println("\nFair spreads slots across jobs, trading a little makespan for far")
	fmt.Println("better mean completion on this heavy-tailed workload.")
}

func completionStats(res *simmr.ReplayResult) (mean, p95 float64) {
	times := make([]float64, 0, len(res.Jobs))
	for _, j := range res.Jobs {
		times = append(times, j.CompletionTime())
	}
	for _, t := range times {
		mean += t
	}
	mean /= float64(len(times))
	// insertion sort: tiny n, avoids importing sort for the example
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j-1] > times[j]; j-- {
			times[j-1], times[j] = times[j], times[j-1]
		}
	}
	return mean, times[len(times)*95/100]
}
