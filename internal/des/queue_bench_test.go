package des

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkEventQueue measures the queue's hot mix — push, pop, and
// update (the filler-shuffle patch) — at steady live-event populations
// matching real replays: the engine's heap high-water is roughly
// cluster slots + queued arrivals, i.e. hundreds to a few thousand
// pending events. Each iteration performs one pop+free, one push, and
// (every 8th) one update, so ns/op reads as "cost per event through
// the queue core".
func BenchmarkEventQueue(b *testing.B) {
	for _, population := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("live=%d", population), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			var q EventQueue
			live := make([]*Event, 0, population)
			now := 0.0
			for i := 0; i < population; i++ {
				live = append(live, q.PushTask(now+rng.Float64()*1000, 0, i, i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := q.Pop()
				now = e.Time
				slot := e.Task % population
				q.Free(e)
				live[slot] = q.PushTask(now+rng.Float64()*1000, 0, i, slot)
				if i%8 == 0 {
					// Patch a pending event the way map-stage completion
					// patches filler reduces.
					u := live[(slot+population/2)%population]
					if u.Scheduled() {
						q.Update(u, now+rng.Float64()*500)
					}
				}
			}
		})
	}
}

// BenchmarkEventQueuePushPopChurn is the degenerate fill-then-drain
// cycle: no steady population, maximal sift depth on every pop.
func BenchmarkEventQueuePushPopChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var q EventQueue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(rng.Float64()*1e6, 0, i, nil)
		if q.Len() > 4096 {
			for q.Len() > 0 {
				q.Free(q.Pop())
			}
		}
	}
}
