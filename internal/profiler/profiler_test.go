package profiler

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"simmr/internal/cluster"
	"simmr/internal/hadooplog"
	"simmr/internal/sched"
	"simmr/internal/stats"
	"simmr/internal/workload"
)

func runCluster(t *testing.T, jobs []cluster.Job) (*cluster.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := hadooplog.NewWriter(&buf)
	cfg := cluster.DefaultConfig()
	cfg.Workers = 16
	res, err := cluster.Run(cfg, jobs, sched.FIFO{}, w)
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

func testJob(name string, maps, reduces int) cluster.Job {
	return cluster.Job{
		Name: name,
		Spec: workload.Spec{
			App: name, Dataset: "t",
			NumMaps: maps, NumReduces: reduces, BlockMB: 64,
			MapCompute:    stats.Normal{Mu: 8, Sigma: 1},
			Selectivity:   0.4,
			ReduceCompute: stats.Normal{Mu: 3, Sigma: 0.5},
		},
	}
}

func TestFromReaderBuildsValidTrace(t *testing.T) {
	_, logs := runCluster(t, []cluster.Job{testJob("wc", 48, 8)})
	tr, err := FromReader(bytes.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	tpl := tr.Jobs[0].Template
	if tpl.NumMaps != 48 || tpl.NumReduces != 8 {
		t.Fatalf("counts: %d/%d", tpl.NumMaps, tpl.NumReduces)
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tpl.AppName != "wc" {
		t.Fatalf("app name %q", tpl.AppName)
	}
	for _, d := range tpl.MapDurations {
		if d <= 0 {
			t.Fatal("nonpositive map duration")
		}
	}
}

func TestLogAndDirectPathsAgree(t *testing.T) {
	res, logs := runCluster(t, []cluster.Job{
		testJob("a", 40, 6),
		{Name: "b", Spec: testJob("b", 24, 4).Spec, Arrival: 50},
	})
	fromLogs, err := FromReader(bytes.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	fromRes := FromResult(res)
	if len(fromLogs.Jobs) != len(fromRes.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(fromLogs.Jobs), len(fromRes.Jobs))
	}
	const tol = 2e-3 // log format rounds to milliseconds
	for i := range fromLogs.Jobs {
		a, b := fromLogs.Jobs[i].Template, fromRes.Jobs[i].Template
		if a.NumMaps != b.NumMaps || a.NumReduces != b.NumReduces {
			t.Fatalf("job %d counts differ", i)
		}
		compareSlices(t, "maps", a.MapDurations, b.MapDurations, tol)
		compareSlices(t, "first shuffle", a.FirstShuffle, b.FirstShuffle, tol)
		compareSlices(t, "typical shuffle", a.TypicalShuffle, b.TypicalShuffle, tol)
		compareSlices(t, "reduce", a.ReduceDurations, b.ReduceDurations, tol)
		if math.Abs(fromLogs.Jobs[i].Arrival-fromRes.Jobs[i].Arrival) > tol {
			t.Fatalf("job %d arrivals differ", i)
		}
	}
}

func compareSlices(t *testing.T, what string, a, b []float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s lengths differ: %d vs %d", what, len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	for i := range as {
		if math.Abs(as[i]-bs[i]) > tol {
			t.Fatalf("%s[%d]: %v vs %v", what, i, as[i], bs[i])
		}
	}
}

func TestShuffleClassification(t *testing.T) {
	// With 16 reduce slots and 32 reduces, two waves exist: some first
	// (started during maps), some typical.
	res, _ := runCluster(t, []cluster.Job{testJob("waves", 96, 32)})
	tr := FromResult(res)
	tpl := tr.Jobs[0].Template
	if len(tpl.FirstShuffle) == 0 {
		t.Fatal("no first-wave shuffles recorded")
	}
	if len(tpl.TypicalShuffle) == 0 {
		t.Fatal("no typical shuffles recorded")
	}
	if len(tpl.FirstShuffle)+len(tpl.TypicalShuffle) != 32 {
		t.Fatalf("shuffle classification lost tasks: %d + %d != 32",
			len(tpl.FirstShuffle), len(tpl.TypicalShuffle))
	}
	// The non-overlapping first-shuffle portion should be shorter than a
	// full typical shuffle on average (most of the fetch overlapped).
	f := stats.Summarize(tpl.FirstShuffle)
	ty := stats.Summarize(tpl.TypicalShuffle)
	if f.Mean > ty.Mean*1.5 {
		t.Fatalf("first-shuffle mean %v suspiciously exceeds typical %v", f.Mean, ty.Mean)
	}
}

func TestSingleWaveFallback(t *testing.T) {
	// 8 reduces on 16 slots: one wave, all first-wave. The profiler must
	// synthesize typical shuffles so the template stays replayable.
	res, _ := runCluster(t, []cluster.Job{testJob("onewave", 48, 8)})
	tr := FromResult(res)
	tpl := tr.Jobs[0].Template
	if len(tpl.TypicalShuffle) == 0 {
		t.Fatal("fallback did not synthesize typical shuffles")
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapOnlyJobProfile(t *testing.T) {
	res, logs := runCluster(t, []cluster.Job{testJob("maponly", 20, 0)})
	fromLogs, err := FromReader(bytes.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	fromRes := FromResult(res)
	for _, tr := range []*struct {
		name string
		nm   int
		nr   int
	}{
		{"logs", fromLogs.Jobs[0].Template.NumMaps, fromLogs.Jobs[0].Template.NumReduces},
		{"res", fromRes.Jobs[0].Template.NumMaps, fromRes.Jobs[0].Template.NumReduces},
	} {
		if tr.nm != 20 || tr.nr != 0 {
			t.Fatalf("%s: %d/%d", tr.name, tr.nm, tr.nr)
		}
	}
}

func TestFromRecordsErrors(t *testing.T) {
	cases := map[string]string{
		"missing jobid": `Job JOBNAME="x" SUBMIT_TIME="0" .`,
		"map finish without start": `Job JOBID="job_000001" SUBMIT_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" FINISH_TIME="5" .`,
		"bad attempt id": `Job JOBID="job_000001" SUBMIT_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="bogus" START_TIME="0" .`,
		"no submit": `MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" START_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" FINISH_TIME="5" .`,
		"reduce without sort": `Job JOBID="job_000001" SUBMIT_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" START_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" FINISH_TIME="5" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000000_0" START_TIME="1" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000000_0" FINISH_TIME="9" .`,
		"count mismatch": `Job JOBID="job_000001" SUBMIT_TIME="0" TOTAL_MAPS="5" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" START_TIME="0" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" FINISH_TIME="5" .`,
	}
	for name, logText := range cases {
		if _, err := FromReader(strings.NewReader(logText)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHandCraftedLogSemantics(t *testing.T) {
	// Two maps (end at 10 and 12 -> map stage end 12). Reduce 0 starts at
	// t=5 (first wave; sort finishes 15 -> non-overlap 3), reduce 1
	// starts at 13 (typical; sort finishes 18 -> shuffle 5). Reduce
	// phases 2 and 3 seconds.
	logText := `Job JOBID="job_000001" JOBNAME="hand" SUBMIT_TIME="1" TOTAL_MAPS="2" TOTAL_REDUCES="2" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" START_TIME="2" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000000_0" FINISH_TIME="10" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000001_0" START_TIME="2" .
MapAttempt TASK_ATTEMPT_ID="attempt_000001_m_000001_0" FINISH_TIME="12" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000000_0" START_TIME="5" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000000_0" SHUFFLE_FINISHED="14" SORT_FINISHED="15" FINISH_TIME="17" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000001_0" START_TIME="13" .
ReduceAttempt TASK_ATTEMPT_ID="attempt_000001_r_000001_0" SHUFFLE_FINISHED="17" SORT_FINISHED="18" FINISH_TIME="21" .
Job JOBID="job_000001" FINISH_TIME="21" JOB_STATUS="SUCCESS" .`
	tr, err := FromReader(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	tpl := tr.Jobs[0].Template
	if tr.Jobs[0].Arrival != 1 {
		t.Fatalf("arrival %v", tr.Jobs[0].Arrival)
	}
	compareSlices(t, "maps", tpl.MapDurations, []float64{8, 10}, 1e-9)
	compareSlices(t, "first", tpl.FirstShuffle, []float64{3}, 1e-9)
	compareSlices(t, "typical", tpl.TypicalShuffle, []float64{5}, 1e-9)
	compareSlices(t, "reduce", tpl.ReduceDurations, []float64{2, 3}, 1e-9)
}

func TestMultiJobLogSeparation(t *testing.T) {
	_, logs := runCluster(t, []cluster.Job{
		testJob("j0", 20, 4),
		{Name: "j1", Spec: testJob("j1", 30, 6).Spec, Arrival: 10},
		{Name: "j2", Spec: testJob("j2", 10, 2).Spec, Arrival: 20},
	})
	tr, err := FromReader(bytes.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	wantMaps := []int{20, 30, 10}
	for i, j := range tr.Jobs {
		if j.Template.NumMaps != wantMaps[i] {
			t.Fatalf("job %d maps = %d, want %d", i, j.Template.NumMaps, wantMaps[i])
		}
	}
}
