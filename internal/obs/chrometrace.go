// Chrome trace-event export: the recorded timeline serialized in the
// Trace Event Format understood by chrome://tracing, Perfetto, and
// speedscope. Slots become tracks (one "thread" per slot, map and
// reduce slots grouped into two "processes"), task executions become
// complete ("X") spans, and job arrivals/departures and map-stage
// completions become instant events on a workload track.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Trace Event Format process IDs: one pseudo-process per slot class
// plus one for job-level instants.
const (
	ctPidJobs    = 1
	ctPidMaps    = 2
	ctPidReduces = 3
	ctPidOverlay = 4
)

// ctEvent is one JSON trace event. Field order is fixed by the struct,
// so exports are byte-stable for golden-file tests.
type ctEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ctFile is the JSON Object Format variant of the trace file, which
// carries metadata alongside the event array.
type ctFile struct {
	TraceEvents     []ctEvent      `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// ChromeTraceSink records a replay and exports it in Chrome trace-event
// JSON. One sink per engine; call WriteJSON after the run.
//
// Simulated seconds are exported as trace microseconds (the format's
// native unit), so viewer timestamps read as simulated seconds with
// the unit label off by a factor of one million — irrelevant for the
// intended use of inspecting relative task placement.
type ChromeTraceSink struct {
	tl       *TimelineSink
	instants []ctEvent
	counters Counters

	overlayTitle string
	overlay      []OverlaySpan
}

// OverlaySpan is one span on the analysis overlay track — a fourth
// pseudo-process rendered above the slot tracks. The critical-path
// overlay of `simmr trace explain` is built from these; any
// post-processing layer can use them without obs depending on it.
type OverlaySpan struct {
	// Name labels the span in the viewer.
	Name string
	// Cat is the span's category (filterable in the viewer).
	Cat        string
	Start, End float64
	// Detail, when set, appears in the span's args.
	Detail string
}

// SetOverlay attaches an overlay track written by the next WriteJSON.
// Traces without an overlay are byte-identical to pre-overlay exports.
func (c *ChromeTraceSink) SetOverlay(title string, spans []OverlaySpan) {
	c.overlayTitle, c.overlay = title, spans
}

// NewChromeTraceSink returns an empty Chrome trace recorder.
func NewChromeTraceSink() *ChromeTraceSink {
	return &ChromeTraceSink{tl: NewTimelineSink()}
}

// Event consumes one engine event.
func (c *ChromeTraceSink) Event(ev Event) {
	c.tl.Event(ev)
	switch ev.Kind {
	case KindJobArrival, KindJobDeparture, KindMapStageComplete, KindPreempt:
		c.instants = append(c.instants, ctEvent{
			Name: fmt.Sprintf("%s job %d", ev.Kind, ev.JobID),
			Cat:  ev.Kind.String(), Phase: "i",
			TsUS: ev.Time, Pid: ctPidJobs, Tid: ev.JobID,
			Scope: "t",
		})
	}
}

// RunEnd stores the run counters, exported as otherData.
func (c *ChromeTraceSink) RunEnd(cnt Counters) {
	c.counters = cnt
	c.tl.RunEnd(cnt)
}

// WriteJSON writes the trace file. The output is deterministic for a
// deterministic replay: events appear in (span-start, class, slot)
// order followed by the instant stream, and all map keys are avoided
// in favor of fixed struct fields except args (single-key maps).
func (c *ChromeTraceSink) WriteJSON(w io.Writer) error {
	mapSlots, reduceSlots := c.tl.Slots()
	events := make([]ctEvent, 0, len(c.tl.spans)*2+len(c.instants)+8)

	// Metadata: name the slot tracks.
	meta := func(pid int, name string) ctEvent {
		return ctEvent{Name: "process_name", Cat: "__metadata", Phase: "M",
			Pid: pid, Args: map[string]any{"name": name}}
	}
	events = append(events,
		meta(ctPidJobs, "jobs"),
		meta(ctPidMaps, fmt.Sprintf("map slots (%d used)", mapSlots)),
		meta(ctPidReduces, fmt.Sprintf("reduce slots (%d used)", reduceSlots)),
	)
	if len(c.overlay) > 0 {
		title := c.overlayTitle
		if title == "" {
			title = "overlay"
		}
		events = append(events, meta(ctPidOverlay, title))
	}

	for _, sp := range c.tl.Spans() {
		pid, cat := ctPidMaps, "map"
		if sp.Reduce {
			pid, cat = ctPidReduces, "reduce"
		}
		if sp.Preempted {
			cat = "map-preempted"
		}
		end := sp.End
		if math.IsInf(end, 1) {
			// Unpatched filler (engine failed mid-run): clamp to start.
			end = sp.Start
		}
		dur := end - sp.Start
		ev := ctEvent{
			Name: fmt.Sprintf("j%d/%s%d", sp.JobID, cat[:1], sp.Task),
			Cat:  cat, Phase: "X",
			TsUS: sp.Start, DurUS: &dur,
			Pid: pid, Tid: sp.Slot,
			Args: map[string]any{"job": sp.JobID},
		}
		if sp.Reduce && sp.ShuffleEnd > sp.Start && !math.IsInf(sp.ShuffleEnd, 1) {
			ev.Args = map[string]any{"job": sp.JobID, "shuffle_end": sp.ShuffleEnd}
		}
		events = append(events, ev)
	}
	events = append(events, c.instants...)

	for _, ov := range c.overlay {
		end := ov.End
		if math.IsInf(end, 1) {
			end = ov.Start
		}
		dur := end - ov.Start
		ev := ctEvent{
			Name: ov.Name, Cat: ov.Cat, Phase: "X",
			TsUS: ov.Start, DurUS: &dur,
			Pid: ctPidOverlay, Tid: 0,
		}
		if ov.Detail != "" {
			ev.Args = map[string]any{"detail": ov.Detail}
		}
		events = append(events, ev)
	}

	file := ctFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"events":          c.counters.Events,
			"heap_high_water": c.counters.HeapHighWater,
			"jobs":            c.counters.Jobs,
			"makespan_s":      c.counters.Makespan,
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
