package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	q.Push(3.0, 0, 0, nil)
	q.Push(1.0, 0, 1, nil)
	q.Push(2.0, 0, 2, nil)

	want := []int{1, 2, 0}
	for i, jobID := range want {
		e := q.Pop()
		if e.JobID != jobID {
			t.Fatalf("pop %d: got job %d, want %d", i, e.JobID, jobID)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

func TestQueueFIFOAtEqualTimes(t *testing.T) {
	var q EventQueue
	for i := 0; i < 100; i++ {
		q.Push(5.0, 0, i, nil)
	}
	for i := 0; i < 100; i++ {
		if e := q.Pop(); e.JobID != i {
			t.Fatalf("equal-time events reordered: got %d at position %d", e.JobID, i)
		}
	}
}

func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q EventQueue
	q.Pop()
}

func TestPeek(t *testing.T) {
	var q EventQueue
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should be nil")
	}
	q.Push(2.0, 0, 7, nil)
	q.Push(1.0, 0, 8, nil)
	if e := q.Peek(); e.JobID != 8 {
		t.Fatalf("Peek = job %d, want 8", e.JobID)
	}
	if q.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}

func TestUpdateReordersHeap(t *testing.T) {
	var q EventQueue
	a := q.Push(10.0, 0, 0, nil)
	q.Push(20.0, 0, 1, nil)
	q.Update(a, 30.0)
	if e := q.Pop(); e.JobID != 1 {
		t.Fatalf("after Update, first pop = job %d, want 1", e.JobID)
	}
	if e := q.Pop(); e.JobID != 0 || e.Time != 30.0 {
		t.Fatalf("updated event wrong: %v", e)
	}
}

func TestUpdateFillerPattern(t *testing.T) {
	// The engine schedules a filler at Infinity and later patches it to a
	// finite time; it must then fire in correct order.
	var q EventQueue
	filler := q.Push(Infinity, 1, 42, nil)
	q.Push(100.0, 0, 1, nil)
	q.Update(filler, 50.0)
	if e := q.Pop(); e.JobID != 42 {
		t.Fatalf("patched filler should fire first, got job %d", e.JobID)
	}
}

func TestRemove(t *testing.T) {
	var q EventQueue
	a := q.Push(1.0, 0, 0, nil)
	q.Push(2.0, 0, 1, nil)
	q.Remove(a)
	if a.Scheduled() {
		t.Fatal("removed event still reports Scheduled")
	}
	if e := q.Pop(); e.JobID != 1 {
		t.Fatalf("got job %d after removal, want 1", e.JobID)
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestRemoveUnscheduledPanics(t *testing.T) {
	var q EventQueue
	a := q.Push(1.0, 0, 0, nil)
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("Remove on popped event did not panic")
		}
	}()
	q.Remove(a)
}

func TestUpdateUnscheduledPanics(t *testing.T) {
	var q EventQueue
	a := q.Push(1.0, 0, 0, nil)
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("Update on popped event did not panic")
		}
	}()
	q.Update(a, 5)
}

func TestFiredCounter(t *testing.T) {
	var q EventQueue
	for i := 0; i < 10; i++ {
		q.Push(float64(i), 0, i, nil)
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	if q.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", q.Fired())
	}
}

// Property: popping all events yields a nondecreasing time sequence, for
// any pushed multiset of times.
func TestQueueSortedDrainProperty(t *testing.T) {
	prop := func(times []float64) bool {
		var q EventQueue
		for i, tm := range times {
			// Quick can generate NaN-ish values via float64; clamp to finite.
			if tm != tm {
				tm = 0
			}
			q.Push(tm, 0, i, nil)
		}
		prev := -Infinity
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the drained sequence equals the sorted input (stability aside).
func TestQueueMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		times := make([]float64, n)
		var q EventQueue
		for i := range times {
			times[i] = float64(rng.Intn(50)) // duplicates likely
			q.Push(times[i], 0, i, nil)
		}
		sort.Float64s(times)
		for i := 0; i < n; i++ {
			if e := q.Pop(); e.Time != times[i] {
				t.Fatalf("trial %d: position %d: got %.1f want %.1f", trial, i, e.Time, times[i])
			}
		}
	}
}

// Property: random interleaving of pushes, pops, updates and removes never
// violates heap order.
func TestQueueRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var q EventQueue
	var live []*Event
	prev := 0.0
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // push at or after current frontier
			e := q.Push(prev+rng.Float64()*100, 0, op, nil)
			live = append(live, e)
		case r < 7 && q.Len() > 0: // pop
			e := q.Pop()
			if e.Time < prev {
				t.Fatalf("op %d: time went backward %.3f -> %.3f", op, prev, e.Time)
			}
			prev = e.Time
		case r < 9 && len(live) > 0: // update a random live event
			i := rng.Intn(len(live))
			if live[i].Scheduled() {
				q.Update(live[i], prev+rng.Float64()*100)
			}
		case q.Len() > 0 && len(live) > 0: // remove a random live event
			i := rng.Intn(len(live))
			if live[i].Scheduled() {
				q.Remove(live[i])
			}
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.AdvanceTo(1.5)
	c.AdvanceTo(1.5) // equal is fine
	c.AdvanceTo(2.0)
	if c.Now() != 2.0 {
		t.Fatalf("Now = %f, want 2.0", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backward clock move did not panic")
		}
	}()
	c.AdvanceTo(1.0)
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.AdvanceTo(10)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now = %f", c.Now())
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var q EventQueue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(rng.Float64()*1e6, 0, i, nil)
		if q.Len() > 1024 {
			for q.Len() > 0 {
				q.Pop()
			}
		}
	}
}
