package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistQuantileClosedForms(t *testing.T) {
	cases := []struct {
		d    Dist
		p, x float64
		tol  float64
	}{
		{Constant{5}, 0.3, 5, 0},
		{Uniform{0, 10}, 0.25, 2.5, 1e-12},
		{Exponential{MeanV: 2}, 0.5, 2 * math.Ln2, 1e-12},
		{Normal{Mu: 0, Sigma: 1}, 0.5, 0, 1e-9},
		{Normal{Mu: 0, Sigma: 1}, 0.975, 1.959964, 1e-5},
		{LogNormal{Mu: 0, Sigma: 1}, 0.5, 1, 1e-9},
		{Weibull{K: 1, Lambda: 3}, 0.5, 3 * math.Ln2, 1e-12},
		{Pareto{Xm: 1, Alpha: 2}, 0.75, 2, 1e-12},
		{Shifted{Base: Uniform{0, 10}, Shift: 5}, 0.5, 10, 1e-12},
	}
	for _, c := range cases {
		got := DistQuantile(c.d, c.p)
		if math.Abs(got-c.x) > c.tol {
			t.Errorf("%v quantile(%v) = %v, want %v", c.d, c.p, got, c.x)
		}
	}
}

func TestDistQuantileInvertsCDF(t *testing.T) {
	dists := []Dist{
		Uniform{2, 9}, Exponential{MeanV: 4}, Normal{Mu: 10, Sigma: 3},
		LogNormal{Mu: 1, Sigma: 0.6}, Weibull{K: 1.7, Lambda: 5},
		Gamma{K: 2.2, Theta: 3}, Pareto{Xm: 1, Alpha: 2.5},
	}
	for _, d := range dists {
		for _, p := range []float64{0.05, 0.25, 0.5, 0.9, 0.99} {
			x := DistQuantile(d, p)
			if back := d.CDF(x); math.Abs(back-p) > 1e-6 {
				t.Errorf("%v: CDF(quantile(%v)) = %v", d, p, back)
			}
		}
	}
}

func TestDistQuantileGammaBisection(t *testing.T) {
	// Gamma has no closed form: exercises the bisection path.
	d := Gamma{K: 3, Theta: 2}
	x := DistQuantile(d, 0.5)
	if math.Abs(d.CDF(x)-0.5) > 1e-6 {
		t.Fatalf("gamma median wrong: %v", x)
	}
}

func TestDistQuantileBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.2, 1.5, math.NaN()} {
		if !math.IsNaN(DistQuantile(Uniform{0, 1}, p)) {
			t.Errorf("p=%v should yield NaN", p)
		}
	}
}

func TestDistQuantileMatchesSampleQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := LogNormal{Mu: 2, Sigma: 0.8}
	xs := SampleN(d, 50000, rng)
	sorted := append([]float64(nil), xs...)
	sortFloats(sorted)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		analytic := DistQuantile(d, p)
		empirical := Quantile(sorted, p)
		if math.Abs(analytic-empirical)/analytic > 0.05 {
			t.Errorf("p=%v: analytic %v vs empirical %v", p, analytic, empirical)
		}
	}
}

func sortFloats(xs []float64) {
	// simple insertion-free: delegate to the stdlib through Summarize's
	// path is overkill; use sort via interface-free shell sort
	for gap := len(xs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(xs); i++ {
			for j := i; j >= gap && xs[j-gap] > xs[j]; j -= gap {
				xs[j-gap], xs[j] = xs[j], xs[j-gap]
			}
		}
	}
}

func TestNormQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3} {
		if math.Abs(normQuantile(p)+normQuantile(1-p)) > 1e-8 {
			t.Errorf("normQuantile not symmetric at %v", p)
		}
	}
}
