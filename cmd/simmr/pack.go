package main

import (
	"flag"
	"fmt"
	"os"

	"simmr/internal/tracebin"
	"simmr/pkg/simmr"
)

// runTracePack implements `simmr trace pack`: convert a JSON trace (or
// a trace-database entry) into the columnar binary `.strc` store. The
// conversion is lossless — `simmr trace unpack` recovers the original
// trace exactly (float64 values round-trip bit-for-bit through both
// formats).
func runTracePack(args []string) error {
	fs := flag.NewFlagSet("trace pack", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "path to a trace JSON file")
		dbDir     = fs.String("db", "", "trace database directory (with -name)")
		dbName    = fs.String("name", "", "trace name inside -db")
		out       = fs.String("out", "", "output `.strc` path (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("trace pack: -out is required")
	}
	tr, err := loadTrace(*tracePath, *dbDir, *dbName)
	if err != nil {
		return err
	}
	if err := simmr.WritePackedTrace(*out, tr); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "packed %d jobs into %s (%d bytes, %.1f B/job)\n",
		len(tr.Jobs), *out, st.Size(), float64(st.Size())/float64(len(tr.Jobs)))
	return nil
}

// runTraceUnpack implements `simmr trace unpack`: convert a packed
// `.strc` trace back to the JSON wire format.
func runTraceUnpack(args []string) error {
	fs := flag.NewFlagSet("trace unpack", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "path to a packed `.strc` trace")
		out       = fs.String("out", "", "output JSON path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("trace unpack: -trace is required")
	}
	tr, err := simmr.OpenPackedTrace(*tracePath)
	if err != nil {
		return err
	}
	defer tr.Close()
	data, err := simmr.EncodeTrace(tr)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "unpacked %d jobs to %s\n", len(tr.Jobs), *out)
	return nil
}

// runTraceInfo implements `simmr trace info`: print the section-level
// layout of a packed trace — sizes, CRCs, dedup ratio, load mode.
func runTraceInfo(args []string) error {
	fs := flag.NewFlagSet("trace info", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "path to a packed `.strc` trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("trace info: -trace is required")
	}
	s, err := tracebin.Open(*tracePath)
	if err != nil {
		return err
	}
	defer s.Close()
	info := s.Info()
	mode := "copied (io.ReaderAt fallback)"
	if info.Mapped {
		mode = "mmap (zero-copy arena)"
	}
	fmt.Printf("trace %q: %d bytes, %s\n", s.Trace().Name, info.FileSize, mode)
	fmt.Printf("%d jobs, %d unique templates (%.1f jobs/template), %d arena floats, %.1f B/job\n",
		info.Jobs, info.UniqueTemplates, float64(info.Jobs)/float64(info.UniqueTemplates),
		info.ArenaFloats, info.BytesPerJob)
	fmt.Println("\nsection     offset       size        crc32c")
	for _, sec := range info.Sections {
		fmt.Printf("%-9s %10d %10d      %08x\n", sec.Name, sec.Offset, sec.Size, sec.CRC)
	}
	return nil
}
