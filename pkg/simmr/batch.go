package simmr

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"simmr/internal/engine"
	"simmr/internal/obs"
	"simmr/internal/parallel"
	"simmr/internal/runs"
	"simmr/internal/sched"
)

// ReplaySpec is one unit of a ReplayBatch: a trace replayed under a
// policy and engine configuration. The zero-value Config means
// DefaultReplayConfig (Config.Sink may be set on an otherwise-zero
// Config without losing the defaults); a nil Policy means FIFO. Traces
// may be shared between specs (and with the caller) — the engine
// treats them as read-only. Config.Sink must NOT be shared between
// specs: sinks are single-goroutine, one per engine (obs.Sink).
type ReplaySpec struct {
	// Name labels the spec in error messages; defaults to the trace name.
	Name   string
	Config ReplayConfig
	Trace  *Trace
	// Policy must be stateless if the same value is reused across specs
	// (all built-ins except DynamicPriority are); give each spec its own
	// instance otherwise.
	Policy Policy
}

// ReplayBatch replays N independent simulations — any mix of traces,
// policies, and configurations — concurrently on a bounded worker pool
// (one worker per CPU). Results come back in spec order, identical to
// running each spec serially; the first failing spec's error (lowest
// index) is returned.
func ReplayBatch(specs []ReplaySpec) ([]*ReplayResult, error) {
	return ReplayBatchCtx(context.Background(), 0, specs)
}

// ReplayBatchCtx is ReplayBatch with an explicit worker bound
// (0 = one per CPU, 1 = serial) and cancellation.
func ReplayBatchCtx(ctx context.Context, workers int, specs []ReplaySpec) ([]*ReplayResult, error) {
	return ReplayBatchProgress(ctx, workers, nil, specs)
}

// ReplayBatchProgress is ReplayBatchCtx with bounded-rate completion
// reporting: progress (when non-nil) receives (done specs, total
// specs) callbacks from the worker pool under the parallel package's
// rate-limit contract.
func ReplayBatchProgress(ctx context.Context, workers int, progress ProgressFunc, specs []ReplaySpec) ([]*ReplayResult, error) {
	return ReplayBatchCfg(ctx, BatchConfig{Workers: workers, Progress: progress}, specs)
}

// BatchConfig parameterizes ReplayBatchCfg beyond the specs themselves.
type BatchConfig struct {
	// Workers bounds concurrent replays: 0 means one worker per CPU, 1
	// forces the serial path. Results are in spec order regardless.
	Workers int
	// Progress, when set, receives bounded-rate (done, total) callbacks.
	Progress ProgressFunc
	// Telemetry, when set, records the batch into the sharded metrics
	// registry: per-spec engine events and duration histograms (one
	// lock-free sink shard per spec), per-replay wall time and
	// events/sec, and the engine pool's reuse hit rate.
	Telemetry *Telemetry
	// Runs, when set, registers the batch in the ops-plane run registry
	// (kind "batch") — see SweepConfig.Runs.
	Runs *RunRegistry
	// Flight, when Runs is set, attaches a flight recorder of this ring
	// size to every spec's engine (-1 selects the default; 0 disables) —
	// see SweepConfig.Flight.
	Flight int
	// Cache, when set, memoizes specs through the content-addressed
	// replay result cache — see SweepConfig.Cache for the semantics
	// (cached specs skip the engine and their sinks do not fire).
	Cache *Cache
}

// ReplayBatchCfg is the fully configurable batch entry point; the other
// ReplayBatch variants are shorthands for it.
func ReplayBatchCfg(ctx context.Context, bcfg BatchConfig, specs []ReplaySpec) ([]*ReplayResult, error) {
	for i := range specs {
		if specs[i].Trace == nil || len(specs[i].Trace.Jobs) == 0 {
			return nil, fmt.Errorf("simmr: replay batch spec %d (%s): %w", i, specName(&specs[i]), ErrEmptyWorkload)
		}
	}
	// Specs share one engine pool: the batch holds ~one engine per
	// worker regardless of how many specs it replays.
	var pool engine.Pool
	tel := bcfg.Telemetry
	if tel != nil {
		tel.ExpectRuns(len(specs))
		pool.OnGet = tel.PoolGet
	}
	run := beginRun(bcfg.Runs, runs.KindBatch, batchTrace(specs), nil,
		fmt.Sprintf("specs=%d", len(specs)))
	run.SetPhase("replay")
	var hits atomic.Uint64
	results, err := parallel.MapProgress(ctx, bcfg.Workers, len(specs), run.ProgressFunc(bcfg.Progress), func(_ context.Context, i int) (*ReplayResult, error) {
		spec := &specs[i]
		cfg := spec.Config
		// A spec that only sets an observability sink still gets the
		// default cluster configuration.
		sink := cfg.Sink
		cfg.Sink = nil
		if cfg == (ReplayConfig{}) {
			cfg = engine.DefaultConfig()
		}
		cfg.Sink = sink
		policy := spec.Policy
		if policy == nil {
			policy = sched.FIFO{}
		}
		// Consult the cache before claiming an engine (a cached spec
		// never simulates, so its sinks do not fire).
		key, keyOK := cacheKey(bcfg.Cache, cfg, spec.Trace, policy)
		if keyOK {
			if res, ok := bcfg.Cache.Get(key); ok {
				hits.Add(1)
				run.AddCached(1)
				run.AddJobs(uint64(len(res.Jobs)))
				return res, nil
			}
		}
		rec, flightDone := runFlight(run, bcfg.Flight, specName(spec))
		if rec != nil {
			cfg.Sink = obs.Tee(cfg.Sink, rec)
		}
		var start time.Time
		if tel != nil {
			// Each spec's telemetry sink writes its own registry shard;
			// Tee keeps a spec-provided sink observing too.
			cfg.Sink = obs.Tee(cfg.Sink, tel.EngineSink())
			start = time.Now()
		}
		res, err := pool.Run(cfg, spec.Trace, policy)
		flightDone(res, err)
		if err != nil {
			return nil, fmt.Errorf("simmr: replay batch spec %d (%s): %w", i, specName(spec), err)
		}
		if keyOK {
			bcfg.Cache.Put(key, res)
		}
		if tel != nil {
			tel.ReplayDone(time.Since(start), res.Events)
		}
		run.AddEvents(res.Events)
		run.AddJobs(uint64(len(res.Jobs)))
		return res, nil
	})
	if h := hits.Load(); h > 0 {
		// Cached specs never replayed: rebalance the expected-run count
		// and mark a fully memoized batch with its own terminal phase.
		if tel != nil {
			tel.ExpectRuns(-int(h))
		}
		if err == nil && h == uint64(len(specs)) {
			run.SetPhase("cached")
		}
	}
	run.End(err)
	return results, err
}

// batchTrace names a batch's workload for the run registry: the shared
// trace when every spec replays the same one, nil (anonymous) for a
// mixed batch.
func batchTrace(specs []ReplaySpec) *Trace {
	if len(specs) == 0 {
		return nil
	}
	tr := specs[0].Trace
	for i := 1; i < len(specs); i++ {
		if specs[i].Trace != tr {
			return nil
		}
	}
	return tr
}

func specName(s *ReplaySpec) string {
	if s.Name != "" {
		return s.Name
	}
	if s.Trace != nil && s.Trace.Name != "" {
		return s.Trace.Name
	}
	return "unnamed"
}
