module simmr

go 1.22
