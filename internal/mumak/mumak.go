// Package mumak re-implements the modeling behaviour of Apache's Mumak
// MapReduce simulator (MAPREDUCE-728), the baseline the paper compares
// SimMR against (§IV-A, §IV-D, §IV-E).
//
// The two documented properties that distinguish Mumak from SimMR are
// reproduced exactly:
//
//  1. Mumak simulates the TaskTrackers and their heartbeats. Slot
//     allocation happens only when a simulated tracker heartbeats to the
//     job tracker, so the simulation processes vastly more events than a
//     task-level replay — the reason Mumak is two orders of magnitude
//     slower (Figure 6: "Mumak simulates the TaskTrackers and the
//     heartbeats between them, which leads to greater number of
//     simulated events and computation").
//
//  2. Mumak does not model the shuffle phase. A special
//     AllMapsFinished event triggers the reduce phase, and "Mumak models
//     the total runtime of the reduce task as the summation of the time
//     taken for completion of all maps and the time taken for an
//     individual task to complete the reduce phase (without the
//     shuffle)". Consequently it underestimates completion times of
//     shuffle-heavy jobs — the error shown in Figure 5(a).
//
// Like the real Mumak, it executes the scheduling policy "as-is" on
// every heartbeat.
package mumak

import (
	"fmt"

	"simmr/internal/des"
	"simmr/internal/sched"
	"simmr/internal/trace"
)

// Config describes the simulated cluster Mumak replays onto.
type Config struct {
	Nodes              int
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// HeartbeatInterval in seconds; Hadoop 0.20 uses 0.3 s for clusters
	// of this size.
	HeartbeatInterval float64
	// MinMapPercentCompleted gates reduce launches, as in the engine.
	MinMapPercentCompleted float64
}

// DefaultConfig mirrors the paper's testbed: 64 trackers with one map
// and one reduce slot each.
func DefaultConfig() Config {
	return Config{
		Nodes:                  64,
		MapSlotsPerNode:        1,
		ReduceSlotsPerNode:     1,
		HeartbeatInterval:      0.3,
		MinMapPercentCompleted: 0.05,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("mumak: Nodes = %d", c.Nodes)
	case c.MapSlotsPerNode < 0 || c.ReduceSlotsPerNode < 0:
		return fmt.Errorf("mumak: negative slots per node")
	case c.HeartbeatInterval <= 0:
		return fmt.Errorf("mumak: HeartbeatInterval = %v", c.HeartbeatInterval)
	case c.MinMapPercentCompleted < 0 || c.MinMapPercentCompleted > 1:
		return fmt.Errorf("mumak: MinMapPercentCompleted = %v", c.MinMapPercentCompleted)
	}
	return nil
}

// JobOutcome reports one replayed job.
type JobOutcome struct {
	ID          int
	Name        string
	Arrival     float64
	Finish      float64
	MapStageEnd float64
}

// CompletionTime returns finish − arrival.
func (o *JobOutcome) CompletionTime() float64 { return o.Finish - o.Arrival }

// Result is the outcome of one Mumak replay.
type Result struct {
	Jobs     []JobOutcome
	Events   uint64
	Makespan float64
}

const (
	evHeartbeat = iota
	evJobArrival
	evMapDone
	evAllMapsFinished
	evReduceDone
)

type simJob struct {
	info *sched.JobInfo
	tpl  *trace.Template
	out  JobOutcome

	nextMap      int
	nextReduce   int
	slowstartMin int

	// waiting are reduce tasks that started before AllMapsFinished;
	// each holds its reduce-phase duration, applied from the map-stage
	// end (Mumak's reduce model).
	waiting      []waitingReduce
	allMapsFired bool
	done         bool
}

type waitingReduce struct {
	node   int
	reduce float64
}

// Simulator replays one trace with Mumak's modeling choices.
type Simulator struct {
	cfg    Config
	policy sched.Policy

	clock des.Clock
	q     des.EventQueue

	freeMap    []int
	freeReduce []int

	jobs      []*simJob
	indexOf   map[int]int // job ID -> index in jobs
	active    []*sched.JobInfo
	remaining int
}

// New builds a Mumak replay of the trace.
func New(cfg Config, tr *trace.Trace, policy sched.Policy) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:        cfg,
		policy:     policy,
		indexOf:    make(map[int]int, len(tr.Jobs)),
		freeMap:    make([]int, cfg.Nodes),
		freeReduce: make([]int, cfg.Nodes),
		remaining:  len(tr.Jobs),
	}
	for n := 0; n < cfg.Nodes; n++ {
		s.freeMap[n] = cfg.MapSlotsPerNode
		s.freeReduce[n] = cfg.ReduceSlotsPerNode
	}
	for _, j := range tr.Jobs {
		slowstart := int(float64(j.Template.NumMaps)*cfg.MinMapPercentCompleted + 0.9999)
		if slowstart < 1 {
			slowstart = 1
		}
		s.indexOf[j.ID] = len(s.jobs)
		s.jobs = append(s.jobs, &simJob{
			info: &sched.JobInfo{
				ID: j.ID, Name: j.Name,
				Arrival: j.Arrival, Deadline: j.Deadline,
				NumMaps: j.Template.NumMaps, NumReduces: j.Template.NumReduces,
				Profile: j.Template.Profile(),
			},
			tpl:          j.Template,
			out:          JobOutcome{ID: j.ID, Name: j.Name, Arrival: j.Arrival},
			slowstartMin: slowstart,
		})
	}
	return s, nil
}

// Run replays the trace to completion.
func (s *Simulator) Run() (*Result, error) {
	for _, sj := range s.jobs {
		s.q.Push(sj.info.Arrival, evJobArrival, sj.info.ID, nil)
	}
	for n := 0; n < s.cfg.Nodes; n++ {
		offset := s.cfg.HeartbeatInterval * float64(n) / float64(s.cfg.Nodes)
		s.q.Push(offset, evHeartbeat, n, nil)
	}
	for s.remaining > 0 {
		if s.q.Len() == 0 {
			return nil, fmt.Errorf("mumak: deadlock with %d jobs unfinished", s.remaining)
		}
		ev := s.q.Pop()
		s.clock.AdvanceTo(ev.Time)
		switch ev.Type {
		case evHeartbeat:
			s.onHeartbeat(ev.JobID)
		case evJobArrival:
			s.onJobArrival(s.jobs[s.indexOf[ev.JobID]])
		case evMapDone:
			s.onMapDone(s.jobs[s.indexOf[ev.JobID]], ev.Payload.(int))
		case evAllMapsFinished:
			s.onAllMapsFinished(s.jobs[s.indexOf[ev.JobID]])
		case evReduceDone:
			s.onReduceDone(s.jobs[s.indexOf[ev.JobID]], ev.Payload.(int))
		default:
			return nil, fmt.Errorf("mumak: unknown event type %d", ev.Type)
		}
	}
	res := &Result{Events: s.q.Fired()}
	for _, sj := range s.jobs {
		res.Jobs = append(res.Jobs, sj.out)
		if sj.out.Finish > res.Makespan {
			res.Makespan = sj.out.Finish
		}
	}
	return res, nil
}

func (s *Simulator) onJobArrival(sj *simJob) {
	s.active = append(s.active, sj.info)
	if aa, ok := s.policy.(sched.ArrivalAware); ok {
		aa.OnJobArrival(sj.info, s.cfg.Nodes*s.cfg.MapSlotsPerNode, s.cfg.Nodes*s.cfg.ReduceSlotsPerNode)
	}
}

// onHeartbeat runs the scheduler for one tracker — Mumak's per-heartbeat
// scheduler invocation.
func (s *Simulator) onHeartbeat(node int) {
	now := s.clock.Now()
	for s.freeMap[node] > 0 {
		idx := s.policy.ChooseNextMapTask(s.active)
		if idx < 0 {
			break
		}
		s.startMap(s.jobs[s.indexOf[s.active[idx].ID]], node)
	}
	for s.freeReduce[node] > 0 {
		idx := s.policy.ChooseNextReduceTask(s.active)
		if idx < 0 {
			break
		}
		s.startReduce(s.jobs[s.indexOf[s.active[idx].ID]], node)
	}
	if s.remaining > 0 {
		s.q.Push(now+s.cfg.HeartbeatInterval, evHeartbeat, node, nil)
	}
}

func (s *Simulator) startMap(sj *simJob, node int) {
	i := sj.nextMap
	sj.nextMap++
	sj.info.ScheduledMaps++
	s.freeMap[node]--
	dur := sj.tpl.MapDuration(i)
	s.q.Push(s.clock.Now()+dur, evMapDone, sj.info.ID, node)
}

func (s *Simulator) onMapDone(sj *simJob, node int) {
	sj.info.CompletedMaps++
	s.freeMap[node]++
	if !sj.info.ReduceReady && sj.info.CompletedMaps >= sj.slowstartMin {
		sj.info.ReduceReady = true
	}
	if sj.info.MapsDone() && !sj.allMapsFired {
		sj.allMapsFired = true
		s.q.Push(s.clock.Now(), evAllMapsFinished, sj.info.ID, nil)
	}
}

func (s *Simulator) startReduce(sj *simJob, node int) {
	i := sj.nextReduce
	sj.nextReduce++
	sj.info.ScheduledReduces++
	s.freeReduce[node]--
	reducePhase := sj.tpl.ReduceDuration(i)
	now := s.clock.Now()
	if !sj.info.MapsDone() {
		// Reduce runtime = (time for all maps to finish) + reduce phase,
		// with no shuffle: the task parks until AllMapsFinished.
		sj.waiting = append(sj.waiting, waitingReduce{node: node, reduce: reducePhase})
		return
	}
	s.q.Push(now+reducePhase, evReduceDone, sj.info.ID, node)
}

// onAllMapsFinished is Mumak's special event triggering the reduce phase
// of parked reduces.
func (s *Simulator) onAllMapsFinished(sj *simJob) {
	now := s.clock.Now()
	sj.out.MapStageEnd = now
	for _, w := range sj.waiting {
		s.q.Push(now+w.reduce, evReduceDone, sj.info.ID, w.node)
	}
	sj.waiting = nil
	if sj.info.NumReduces == 0 {
		s.finish(sj)
	}
}

func (s *Simulator) onReduceDone(sj *simJob, node int) {
	sj.info.CompletedReduces++
	s.freeReduce[node]++
	if sj.info.Done() {
		s.finish(sj)
	}
}

func (s *Simulator) finish(sj *simJob) {
	if sj.done {
		return
	}
	sj.done = true
	sj.out.Finish = s.clock.Now()
	s.remaining--
	for i, info := range s.active {
		if info == sj.info {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
}

// Run is a convenience wrapper: build and run in one call.
func Run(cfg Config, tr *trace.Trace, policy sched.Policy) (*Result, error) {
	s, err := New(cfg, tr, policy)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
