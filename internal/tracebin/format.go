// Package tracebin implements the `.strc` columnar binary trace store
// (FORMATS.md format #4): a versioned, little-endian, section-based
// on-disk representation of a trace.Trace built for million-job
// replays.
//
// Where the JSON format inlines every job's template — so a 1M-job
// trace materializes 1M duration arrays on load — `.strc` stores each
// *unique* template once (SimMR's §III-A job-template keying makes
// most production jobs repeat runs of a few templates) and keeps every
// task duration in one contiguous float64 arena that templates
// reference by (offset, length) spans. Loading memory-maps the file
// and serves trace.Template duration accessors directly off the arena
// with zero copies, so peak heap is proportional to job *count* and
// unique-template volume, never to total task-duration volume.
//
// File layout (all integers little-endian):
//
//	header   160 B fixed: magic, version, counts, section table, CRC
//	arena    float64 task durations, 8-byte aligned, shared spans
//	strings  raw UTF-8 blob; (offset,len) refs, interned on write
//	templates fixed 96 B records: name refs, counts, counter ref,
//	          four (offset,count) arena spans
//	counters fixed 16 B records: key ref + float64 value
//	jobs     fixed 40 B records: id, name ref, arrival, deadline,
//	          template index
//
// Every section carries a CRC-32C checked on open; decode validates
// all cross-section references before the trace is handed out, so a
// corrupted or truncated file errors cleanly and never panics or
// over-reads (FuzzDecodeSTRC pins this).
package tracebin

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// magic identifies a SimMR binary trace file.
	magic = "STRC"
	// version is the current format version. Readers reject files with
	// a different major version; the format is append-only within a
	// version (new trailing header fields must keep headerSize fixed).
	version = 1

	// headerSize is the fixed byte length of the header. The arena
	// starts immediately after it, which keeps the arena 8-byte aligned
	// for zero-copy float64 views over the mapping.
	headerSize = 160

	// Section indices into the header's section table.
	secArena     = 0
	secStrings   = 1
	secTemplates = 2
	secCounters  = 3
	secJobs      = 4
	numSections  = 5

	// Fixed record sizes.
	tplRecSize = 96
	jobRecSize = 40
	ctrRecSize = 16

	// sectionEntrySize is one section-table entry: offset u64,
	// size u64, crc u32, pad u32.
	sectionEntrySize = 24
	sectionTableOff  = 32
	headerCRCOff     = sectionTableOff + numSections*sectionEntrySize // 152
)

// sectionNames label the section table for `simmr trace info`.
var sectionNames = [numSections]string{"arena", "strings", "templates", "counters", "jobs"}

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one decoded section-table entry.
type section struct {
	off  uint64
	size uint64
	crc  uint32
}

// header is the decoded fixed header.
type header struct {
	jobCount uint64
	tplCount uint64
	nameOff  uint32
	nameLen  uint32
	sections [numSections]section
}

// encodeHeader serializes h into a fresh headerSize buffer, computing
// the header CRC over everything before the CRC field.
func encodeHeader(h *header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], version)
	// buf[6:8] flags, reserved zero.
	binary.LittleEndian.PutUint64(buf[8:16], h.jobCount)
	binary.LittleEndian.PutUint64(buf[16:24], h.tplCount)
	binary.LittleEndian.PutUint32(buf[24:28], h.nameOff)
	binary.LittleEndian.PutUint32(buf[28:32], h.nameLen)
	for i, s := range h.sections {
		off := sectionTableOff + i*sectionEntrySize
		binary.LittleEndian.PutUint64(buf[off:off+8], s.off)
		binary.LittleEndian.PutUint64(buf[off+8:off+16], s.size)
		binary.LittleEndian.PutUint32(buf[off+16:off+20], s.crc)
	}
	binary.LittleEndian.PutUint32(buf[headerCRCOff:headerCRCOff+4], crc32.Checksum(buf[:headerCRCOff], castagnoli))
	return buf
}

// decodeHeader parses and integrity-checks the fixed header. It bounds
// every section against fileSize but does not touch section bytes.
func decodeHeader(buf []byte, fileSize uint64) (*header, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("tracebin: file too short for header: %d bytes", len(buf))
	}
	if string(buf[0:4]) != magic {
		return nil, fmt.Errorf("tracebin: bad magic %q (want %q)", buf[0:4], magic)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != version {
		return nil, fmt.Errorf("tracebin: unsupported format version %d (reader supports %d)", v, version)
	}
	if got, want := binary.LittleEndian.Uint32(buf[headerCRCOff:headerCRCOff+4]), crc32.Checksum(buf[:headerCRCOff], castagnoli); got != want {
		return nil, fmt.Errorf("tracebin: header CRC mismatch: %08x != %08x", got, want)
	}
	h := &header{
		jobCount: binary.LittleEndian.Uint64(buf[8:16]),
		tplCount: binary.LittleEndian.Uint64(buf[16:24]),
		nameOff:  binary.LittleEndian.Uint32(buf[24:28]),
		nameLen:  binary.LittleEndian.Uint32(buf[28:32]),
	}
	for i := range h.sections {
		off := sectionTableOff + i*sectionEntrySize
		s := section{
			off:  binary.LittleEndian.Uint64(buf[off : off+8]),
			size: binary.LittleEndian.Uint64(buf[off+8 : off+16]),
			crc:  binary.LittleEndian.Uint32(buf[off+16 : off+20]),
		}
		if s.off < headerSize || s.off%8 != 0 {
			return nil, fmt.Errorf("tracebin: section %s at invalid offset %d", sectionNames[i], s.off)
		}
		if s.size > fileSize || s.off > fileSize-s.size {
			return nil, fmt.Errorf("tracebin: section %s [%d,+%d) exceeds file size %d",
				sectionNames[i], s.off, s.size, fileSize)
		}
		h.sections[i] = s
	}
	// Fixed-width sections must match their record counts exactly, and
	// the counts must not overflow when multiplied out.
	if h.tplCount > (1<<56)/tplRecSize || h.sections[secTemplates].size != h.tplCount*tplRecSize {
		return nil, fmt.Errorf("tracebin: template section size %d != %d records x %d",
			h.sections[secTemplates].size, h.tplCount, tplRecSize)
	}
	if h.jobCount > (1<<56)/jobRecSize || h.sections[secJobs].size != h.jobCount*jobRecSize {
		return nil, fmt.Errorf("tracebin: job section size %d != %d records x %d",
			h.sections[secJobs].size, h.jobCount, jobRecSize)
	}
	if h.sections[secCounters].size%ctrRecSize != 0 {
		return nil, fmt.Errorf("tracebin: counter section size %d not a multiple of %d",
			h.sections[secCounters].size, ctrRecSize)
	}
	if h.sections[secArena].size%8 != 0 {
		return nil, fmt.Errorf("tracebin: arena size %d not a multiple of 8", h.sections[secArena].size)
	}
	strs := h.sections[secStrings]
	if uint64(h.nameLen) > strs.size || uint64(h.nameOff) > strs.size-uint64(h.nameLen) {
		return nil, fmt.Errorf("tracebin: trace name ref [%d,+%d) exceeds string section size %d",
			h.nameOff, h.nameLen, strs.size)
	}
	return h, nil
}

// checkStringRef bounds one (offset, length) string reference.
func checkStringRef(off, n uint32, strSize uint64, what string) error {
	if uint64(n) > strSize || uint64(off) > strSize-uint64(n) {
		return fmt.Errorf("tracebin: %s string ref [%d,+%d) exceeds string section size %d", what, off, n, strSize)
	}
	return nil
}
