package simmr

import (
	"math/rand"
	"testing"
)

func TestMinEDFWithEstimator(t *testing.T) {
	names := map[string]string{
		"low": "MinEDF-low", "avg": "MinEDF", "up": "MinEDF-up", "": "MinEDF",
	}
	for arg, want := range names {
		if got := MinEDFWithEstimator(arg).Name(); got != want {
			t.Errorf("estimator %q -> %q, want %q", arg, got, want)
		}
	}
}

func TestParseDistFacade(t *testing.T) {
	d, err := ParseDist("exponential(12)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 12 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if _, err := ParseDist("nope(1)"); err == nil {
		t.Fatal("bad expression should fail")
	}
}

func TestParseWorkloadDescFacade(t *testing.T) {
	js := `{"jobs":6,"mean_interarrival":10,"classes":[
		{"name":"a","num_maps":"constant(4)","map":"constant(2)"}]}`
	wd, err := ParseWorkloadDesc([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wd.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 6 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if _, err := ParseWorkloadDesc([]byte("{")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestTraceTransformFacades(t *testing.T) {
	tpl := &Template{AppName: "t", NumMaps: 1, MapDurations: []float64{1}}
	tr := &Trace{Jobs: []*Job{
		{Arrival: 0, Template: tpl},
		{Arrival: 10000, Template: tpl.Clone()},
	}}
	tr.Normalize()
	if err := StripIdle(tr, 50); err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[1].Arrival != 50 {
		t.Fatalf("StripIdle arrival = %v", tr.Jobs[1].Arrival)
	}
	if err := CompressArrivals(tr, 0.5); err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[1].Arrival != 25 {
		t.Fatalf("CompressArrivals arrival = %v", tr.Jobs[1].Arrival)
	}
}

func TestDynamicPriorityFacade(t *testing.T) {
	p := NewDynamicPriority(map[int]float64{0: 10}, map[int]float64{0: 1})
	if p.Name() != "DynamicPriority" {
		t.Fatal(p.Name())
	}
	tr := &Trace{Jobs: []*Job{{
		Template: &Template{AppName: "d", NumMaps: 2, MapDurations: []float64{1, 1}},
	}}}
	tr.Normalize()
	res, err := Replay(ReplayConfig{MapSlots: 2, ReduceSlots: 1, MinMapPercentCompleted: 0.05}, tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Finish != 1 {
		t.Fatalf("finish = %v", res.Jobs[0].Finish)
	}
}

func TestLocalityConstantsAndBreakdown(t *testing.T) {
	apps := PaperApps()
	cfg := DefaultClusterConfig()
	cfg.Workers = 8
	res, err := RunCluster(cfg, []ClusterJob{{Spec: apps[4].Spec(0)}}, NewFIFO(), nil) // TFIDF: quick
	if err != nil {
		t.Fatal(err)
	}
	loc := res.LocalityBreakdown()
	total := loc[NodeLocal] + loc[RackLocal] + loc[OffRack]
	if total != len(res.Jobs[0].Maps) {
		t.Fatalf("breakdown total %d != %d maps", total, len(res.Jobs[0].Maps))
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	rc := DefaultReplayConfig()
	if rc.MapSlots != 64 || rc.ReduceSlots != 64 {
		t.Fatalf("replay config: %+v", rc)
	}
	mc := DefaultMumakConfig()
	if mc.Nodes != 64 {
		t.Fatalf("mumak config: %+v", mc)
	}
	cc := DefaultClusterConfig()
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJobBoundsFacade(t *testing.T) {
	tpl := &Template{
		AppName: "b", NumMaps: 10, NumReduces: 2,
		MapDurations:    constSlice(10, 5),
		FirstShuffle:    constSlice(2, 1),
		TypicalShuffle:  constSlice(2, 2),
		ReduceDurations: constSlice(2, 1),
	}
	b := JobBounds(tpl.Profile(), 5, 2)
	if !(b.Low > 0 && b.Low <= b.Avg() && b.Avg() <= b.Up) {
		t.Fatalf("bounds disordered: %+v", b)
	}
}
