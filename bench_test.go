// Package bench holds the benchmark harness: one testing.B benchmark per
// paper table/figure (regenerating its data at reduced scale — run
// cmd/experiments for paper-scale output files) plus microbenchmarks for
// the performance claims of §I and §IV-E.
package bench

import (
	"math/rand"
	"testing"

	"simmr/internal/benchkit"
	"simmr/internal/experiments"
	"simmr/internal/sched"
	"simmr/internal/synth"
	"simmr/pkg/simmr"
)

// BenchmarkReplayAllocs measures steady-state allocations per replay of
// a shared production trace (see the allocs/op column): the slab-backed
// event queue recycles events through a free list, so allocations are
// bounded by the peak live-event population, not the total event count.
func BenchmarkReplayAllocs(b *testing.B) { benchkit.Replay(b) }

// BenchmarkReplayObserved is BenchmarkReplayAllocs with a metrics sink
// attached — compare the two for the cost of turning observability on.
// `make bench-guard` enforces that the no-sink path stays within 5% of
// the BENCH_engine.json allocation baseline.
func BenchmarkReplayObserved(b *testing.B) { benchkit.ReplayObserved(b) }

// BenchmarkAttr is BenchmarkReplayAllocs with the causal attribution
// sink attached — the full `simmr trace explain` event pipeline (phase
// ledger, blame hand-offs, critical-path graph), fresh sink per replay,
// report rendering excluded. Lands in BENCH_engine.json as
// attr_events_per_sec; compare against BenchmarkReplayAllocs for the
// price of explanation.
func BenchmarkAttr(b *testing.B) { benchkit.Attr(b) }

// BenchmarkFlightReplay is BenchmarkReplayAllocs with a flight recorder
// attached — the ops plane's always-on post-mortem ring. Its allocs/op
// must equal the bare pooled replay's (the ring is preallocated and
// reused across runs); `make bench-guard` holds it to the very same
// alloc bound as BenchmarkReplayAllocs, not a separate baseline.
func BenchmarkFlightReplay(b *testing.B) { benchkit.FlightReplay(b) }

// BenchmarkMultiTenantScan replays 1000 concurrently active jobs
// through the reference per-slot policy scan — O(slots × jobs) per
// event, the multi-tenant bottleneck ISSUE 5 targets.
func BenchmarkMultiTenantScan(b *testing.B) { benchkit.MultiTenant(b, false) }

// BenchmarkMultiTenantIndexed is the same workload on the BatchPolicy
// fast path (tournament indexes + batch slot allocation); outcomes are
// byte-identical to the scan, only the lookup cost changes. The ratio
// lands in BENCH_engine.json as sched_speedup.
func BenchmarkMultiTenantIndexed(b *testing.B) { benchkit.MultiTenant(b, true) }

// BenchmarkPreemptScan pins preemption cost at 1k concurrent jobs on
// the scan allocation path. Victim selection itself always goes through
// the engine's deadline-ordered preemption index (one winner query per
// kill, regardless of policy path).
func BenchmarkPreemptScan(b *testing.B) { benchkit.Preempt(b, false) }

// BenchmarkPreemptIndexed is the preemption workload with batch slot
// allocation as well — the fully indexed configuration.
func BenchmarkPreemptIndexed(b *testing.B) { benchkit.Preempt(b, true) }

// BenchmarkFork measures one copy-on-write ForkInto off a sealed
// snapshot at a 90% branch point — pure branch-creation cost (cloned
// event queue plus constant bookkeeping; job chunks stay shared until
// the branch writes). Lands in BENCH_engine.json as fork_ns_per_op.
func BenchmarkFork(b *testing.B) { benchkit.Fork(b) }

// BenchmarkBranchSet runs the K=8 what-if fan-out: one shared prefix
// to 90% of the trace, eight forked branches run to completion. The
// events/sec metric counts only branch-suffix events
// (branch_events_per_sec in BENCH_engine.json).
func BenchmarkBranchSet(b *testing.B) { benchkit.BranchSet(b) }

// BenchmarkBranchIndependent answers the same eight what-ifs the
// pre-fork way — eight full pooled replays. Its wall time over
// BenchmarkBranchSet's is branch_speedup; `make bench-guard` holds
// that ratio above benchkit.BranchSpeedupFloor.
func BenchmarkBranchIndependent(b *testing.B) { benchkit.BranchIndependent(b) }

// BenchmarkCapacitySweepSerial is the single-worker reference for the
// 16-cell capacity sweep.
func BenchmarkCapacitySweepSerial(b *testing.B) { benchkit.Sweep(b, 1) }

// BenchmarkCapacitySweepParallel runs the same grid with one worker per
// CPU; compare against the serial benchmark for the speedup (near-linear
// on multicore hosts, since cells are independent and share one
// read-only trace).
func BenchmarkCapacitySweepParallel(b *testing.B) { benchkit.Sweep(b, 0) }

// BenchmarkTraceLoadBin measures full `.strc` decode (CRC verify,
// template dedup reconstruction, zero-copy arena views, Validate) in
// jobs/sec on a 20000-job deduplicated trace.
func BenchmarkTraceLoadBin(b *testing.B) { benchkit.TraceLoadBin(b) }

// BenchmarkTraceLoadJSON is the reference JSON loader on the identical
// trace; the ratio against BenchmarkTraceLoadBin is the recorded
// trace_load_speedup, guarded above benchkit.TraceLoadSpeedupFloor.
func BenchmarkTraceLoadJSON(b *testing.B) { benchkit.TraceLoadJSON(b) }

// BenchmarkEngineEventThroughput measures raw simulator-engine speed in
// events per second over a production-like workload. The paper claims
// "SimMR can process over one million events per second" (§I); see the
// reported events/sec metric.
func BenchmarkEngineEventThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr, err := synth.ProductionTrace(200, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := simmr.Replay(simmr.DefaultReplayConfig(), tr, simmr.NewFIFO())
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkMumakEventThroughput is the baseline counterpart: Mumak's
// heartbeat-level simulation processes far more events for the same
// trace (the cause of Figure 6's gap).
func BenchmarkMumakEventThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr, err := synth.ProductionTrace(50, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := simmr.ReplayMumak(simmr.DefaultMumakConfig(), tr, simmr.NewFIFO())
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFigure1WaveProgress regenerates the Figure 1 task-progress
// series (WordCount, 128x128 slots).
func BenchmarkFigure1WaveProgress(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2WaveProgress regenerates Figure 2 (64x64 slots).
func BenchmarkFigure2WaveProgress(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3DurationCDFs regenerates the Figure 3 phase-duration
// CDF comparison across allocations.
func BenchmarkFigure3DurationCDFs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIKLDivergence regenerates Table I at 2 executions per
// application (5 at paper scale).
func BenchmarkTableIKLDivergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(2, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5aAccuracyFIFO regenerates the Figure 5(a) accuracy
// panel (testbed run + profile + SimMR and Mumak replays, all six apps).
func BenchmarkFigure5aAccuracyFIFO(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5FIFO(1, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5bAccuracyMinEDF regenerates Figure 5(b).
func BenchmarkFigure5bAccuracyMinEDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5MinEDF(1, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5cAccuracyMaxEDF regenerates Figure 5(c).
func BenchmarkFigure5cAccuracyMaxEDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5MaxEDF(1, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6SimulatorSpeed regenerates the Figure 6 speed
// comparison at a 60-job scale (1148 at paper scale).
func BenchmarkFigure6SimulatorSpeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(60, []int{20, 60}, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7DeadlineSweepReal regenerates a reduced Figure 7 sweep
// (two arrival rates, two deadline factors, 2 repetitions; the paper
// uses six rates, three factors, 400 repetitions).
func BenchmarkFigure7DeadlineSweepReal(b *testing.B) {
	cfg := experiments.DefaultFigure7Config()
	cfg.InterArrivalMeans = []float64{10, 1000}
	cfg.DeadlineFactors = []float64{1.5, 3}
	cfg.Repetitions = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8DeadlineSweepFacebook regenerates a reduced Figure 8
// sweep over the synthetic Facebook workload.
func BenchmarkFigure8DeadlineSweepFacebook(b *testing.B) {
	cfg := experiments.DefaultFigure8Config()
	cfg.InterArrivalMeans = []float64{10, 1000}
	cfg.DeadlineFactors = []float64{1.5, 2}
	cfg.Repetitions = 2
	cfg.JobsPerRun = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacebookDistributionFit regenerates the §V-C fitting step
// (LogNormal wins by KS among the candidate families).
func BenchmarkFacebookDistributionFit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FacebookFit("map", 5000, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterEmulator measures the fine-grained testbed emulator on
// one WordCount run — the expensive side of the validation pipeline.
func BenchmarkClusterEmulator(b *testing.B) {
	apps := simmr.PaperApps()
	spec := apps[3].Spec(0) // Sort/16GB: the quickest full app
	cfg := simmr.DefaultClusterConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := simmr.RunCluster(cfg, []simmr.ClusterJob{{Spec: spec}}, simmr.NewFIFO(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerDecision isolates one policy decision over a
// 100-job queue — the inner loop of every allocation round.
func BenchmarkSchedulerDecision(b *testing.B) {
	q := make([]*sched.JobInfo, 100)
	for i := range q {
		q[i] = &sched.JobInfo{
			ID: i, Arrival: float64(i), Deadline: float64(1000 + i*7%301),
			NumMaps: 100, NumReduces: 10, ReduceReady: true,
		}
	}
	policies := []sched.Policy{sched.FIFO{}, sched.MaxEDF{}, sched.MinEDF{}, sched.Fair{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := policies[i%len(policies)]
		if p.ChooseNextMapTask(q) < 0 {
			b.Fatal("no job chosen")
		}
	}
}
