// Package cluster is a fine-grained emulator of the paper's 66-node
// Hadoop testbed (§IV-B): per-node TaskTrackers with heartbeats, HDFS
// block placement with locality-aware map assignment, per-reduce shuffle
// transfers that overlap the map stage, an external merge-sort cost, and
// node/task execution-speed jitter.
//
// Its role in this reproduction is the role the physical cluster plays
// in the paper: it produces JobTracker history logs for MRProfiler to
// turn into traces, and it produces ground-truth job completion times
// against which SimMR and the Mumak baseline are validated (Figure 5).
// SimMR itself never consults the emulator's internals — it only sees
// the extracted traces — so the validation exercises the same pipeline
// as the paper's.
package cluster

import "fmt"

// Config describes the emulated cluster hardware and Hadoop settings.
type Config struct {
	// Workers is the number of worker nodes (the paper uses 64 workers
	// plus two master nodes, which are not modeled as task executors).
	Workers int
	// MapSlotsPerNode and ReduceSlotsPerNode mirror the testbed's
	// "single map and reduce slot" per slave (§IV-B).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int

	// HeartbeatInterval is the TaskTracker heartbeat period in seconds.
	// Hadoop 0.20 uses 0.3 s for small clusters.
	HeartbeatInterval float64

	// Racks is the number of racks; nodes are assigned round-robin.
	// The paper's testbed used two racks interconnected with gigabit
	// Ethernet (§IV-B). HDFS places the second and third replicas of a
	// block on a remote rack, and the scheduler prefers node-local over
	// rack-local over off-rack map assignment, as in Hadoop.
	Racks int

	// LocalReadMBps / RackLocalReadMBps / RemoteReadMBps are map input
	// read rates for node-local, same-rack, and cross-rack tasks.
	LocalReadMBps     float64
	RackLocalReadMBps float64
	RemoteReadMBps    float64

	// ShuffleMBps is the per-reduce-task aggregate fetch bandwidth.
	ShuffleMBps float64
	// MergeSecPerMB is the external merge-sort cost per MB of shuffled
	// data (the final merge pass after all fetches).
	MergeSecPerMB float64
	// FetchPollInterval is how often an idle reducer polls for newly
	// completed map outputs. Hadoop reducers learn about finished maps
	// in rounds, not instantaneously; this is why the non-overlapping
	// portion of a first-wave shuffle is several seconds even when the
	// fetch itself kept up with the map stage (Figure 3's 4-9 s range).
	FetchPollInterval float64

	// Replication is the HDFS replication level (paper: 3).
	Replication int

	// SlowstartFraction is the fraction of completed maps required
	// before reduce tasks launch (Hadoop default 0.05).
	SlowstartFraction float64

	// NodeJitter is the standard deviation of per-node speed factors
	// around 1.0; TaskJitter the per-task multiplicative noise.
	// Together they make repeated executions differ realistically,
	// which Table I quantifies.
	NodeJitter float64
	TaskJitter float64

	// DelaySchedulingWait enables delay scheduling (Zaharia et al., the
	// paper's reference [3]): when the policy's head-of-line job has no
	// node-local block on the heartbeating node, the job is skipped for
	// up to this many seconds before accepting a non-local assignment.
	// Zero disables it (plain Hadoop FIFO locality).
	DelaySchedulingWait float64

	// SpeculativeExecution enables backup attempts for straggling map
	// tasks. The paper's testbed disabled speculation ("it did not lead
	// to any significant improvements", §IV-B); the emulator supports it
	// so that claim can be checked.
	SpeculativeExecution bool
	// SpeculativeSlowFactor is how many times the mean completed-map
	// duration a task must have been running to count as a straggler.
	SpeculativeSlowFactor float64
	// SpeculativeMinCompleted is the minimum number of completed maps
	// before the job's mean duration is trusted for straggler detection.
	SpeculativeMinCompleted int

	// Seed drives all randomness (placement, jitter, compute samples).
	Seed int64
}

// DefaultConfig returns the paper's testbed: 64 workers, one map and one
// reduce slot each, 64 MB blocks, replication 3, gigabit-class transfer
// rates.
func DefaultConfig() Config {
	return Config{
		Workers:            64,
		MapSlotsPerNode:    1,
		ReduceSlotsPerNode: 1,
		HeartbeatInterval:  0.3,
		Racks:              2,
		LocalReadMBps:      80,
		RackLocalReadMBps:  45,
		RemoteReadMBps:     25,
		ShuffleMBps:        15,
		MergeSecPerMB:      0.03,
		FetchPollInterval:  4,
		Replication:        3,
		SlowstartFraction:  0.05,
		NodeJitter:         0.04,
		TaskJitter:         0.06,
		// Speculation off by default, matching the paper's testbed.
		SpeculativeExecution:    false,
		SpeculativeSlowFactor:   1.5,
		SpeculativeMinCompleted: 5,
		Seed:                    1,
	}
}

// Validate checks the configuration is simulatable.
func (c *Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("cluster: Workers = %d", c.Workers)
	case c.MapSlotsPerNode < 0 || c.ReduceSlotsPerNode < 0:
		return fmt.Errorf("cluster: negative slots per node")
	case c.MapSlotsPerNode == 0 && c.ReduceSlotsPerNode == 0:
		return fmt.Errorf("cluster: no slots at all")
	case c.HeartbeatInterval <= 0:
		return fmt.Errorf("cluster: HeartbeatInterval = %v", c.HeartbeatInterval)
	case c.Racks <= 0:
		return fmt.Errorf("cluster: Racks = %d", c.Racks)
	case c.LocalReadMBps <= 0 || c.RackLocalReadMBps <= 0 || c.RemoteReadMBps <= 0:
		return fmt.Errorf("cluster: read rates must be positive")
	case c.ShuffleMBps <= 0:
		return fmt.Errorf("cluster: ShuffleMBps = %v", c.ShuffleMBps)
	case c.MergeSecPerMB < 0:
		return fmt.Errorf("cluster: MergeSecPerMB = %v", c.MergeSecPerMB)
	case c.FetchPollInterval <= 0:
		return fmt.Errorf("cluster: FetchPollInterval = %v", c.FetchPollInterval)
	case c.Replication <= 0:
		return fmt.Errorf("cluster: Replication = %v", c.Replication)
	case c.SlowstartFraction < 0 || c.SlowstartFraction > 1:
		return fmt.Errorf("cluster: SlowstartFraction = %v", c.SlowstartFraction)
	case c.NodeJitter < 0 || c.TaskJitter < 0:
		return fmt.Errorf("cluster: negative jitter")
	case c.DelaySchedulingWait < 0:
		return fmt.Errorf("cluster: DelaySchedulingWait = %v", c.DelaySchedulingWait)
	case c.SpeculativeExecution && c.SpeculativeSlowFactor <= 1:
		return fmt.Errorf("cluster: SpeculativeSlowFactor = %v, need > 1", c.SpeculativeSlowFactor)
	case c.SpeculativeExecution && c.SpeculativeMinCompleted < 1:
		return fmt.Errorf("cluster: SpeculativeMinCompleted = %d, need >= 1", c.SpeculativeMinCompleted)
	}
	return nil
}

// MapSlots returns the cluster-wide number of map slots.
func (c *Config) MapSlots() int { return c.Workers * c.MapSlotsPerNode }

// ReduceSlots returns the cluster-wide number of reduce slots.
func (c *Config) ReduceSlots() int { return c.Workers * c.ReduceSlotsPerNode }
