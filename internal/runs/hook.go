package runs

import "simmr/internal/obs"

// engineHook feeds a run from inside one engine: the engine's periodic
// progress samples (obs.ProgressSampler, every 64 macro-steps) become
// live intra-replay done/total and event counts, and RunEnd settles
// the totals. One hook serves one engine at a time (the Sink
// contract); pooled reuse across runs is fine because q.Fired()
// restarts from zero at Reset, which RunEnd mirrors by clearing the
// delta base.
type engineHook struct {
	h          *Handle
	lastEvents uint64
}

// EngineHook returns an obs.Sink that streams one engine's progress
// into the run — Tee it with whatever other sinks the caller attaches.
// This is how a single long replay (no sweep-level ProgressFunc)
// surfaces live percent-complete on /runs/{id}/stream. Returns nil for
// a nil handle, which obs.Tee skips.
func (h *Handle) EngineHook() obs.Sink {
	if h == nil {
		return nil
	}
	return &engineHook{h: h}
}

func (e *engineHook) Event(ev obs.Event) {}

func (e *engineHook) SampleProgress(now float64, events uint64, jobsDone, jobsTotal int) {
	if events > e.lastEvents {
		e.h.AddEvents(events - e.lastEvents)
		e.lastEvents = events
	}
	e.h.Progress(jobsDone, jobsTotal)
}

func (e *engineHook) RunEnd(c obs.Counters) {
	if c.Events > e.lastEvents {
		e.h.AddEvents(c.Events - e.lastEvents)
	}
	e.lastEvents = 0
	e.h.AddJobs(uint64(c.Jobs))
	e.h.Progress(c.Jobs, c.Jobs)
}
