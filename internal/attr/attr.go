// Package attr is the causal attribution layer: it consumes the
// engine's observability stream (obs.Sink, all 13 event kinds) and
// reconstructs, per job, *why* the job finished when it did — a
// wait-time breakdown whose phases sum exactly to completion−arrival —
// plus a cluster-wide critical path (the chain of slot hand-offs that
// determines the makespan) and blame assignment: for every
// contended-slot wait, which resident job held the slot the waiter was
// granted, or that the policy left slots idle on purpose.
//
// The attribution model (DESIGN.md §13):
//
//   - Phases partition each job's [arrival, finish] interval by
//     observable state, so conservation holds by construction:
//     admission-wait (arrival → first map-slot grant), then within the
//     map stage map-run / map-slot-wait / preempt-requeue (≥1 running
//     map, idle with no killed work pending, idle with killed work
//     pending), then after map-stage completion reduce-slot-wait (no
//     reduce running), shuffle-barrier (reduces running but all still
//     in shuffle), and reduce-run (≥1 reduce in its reduce phase).
//   - Blame follows the slot hand-off: the engine grants a slot either
//     off a same-timestamp release (contended — the releasing job held
//     "your" slot until the very end of your wait) or off a slot that
//     sat free (the policy's decision not to schedule earlier). The
//     sink tracks both exactly when built with the cluster's slot
//     counts, heuristically (same-timestamp pairing only) otherwise.
//   - The critical path walks backwards from the task whose finish is
//     the makespan, through hand-off edges (the releasing task), own
//     waits (and the task whose finish opened them), filler patches
//     (the map-stage barrier), down to a job arrival.
//
// One Sink per engine (the obs.Sink contract); use Collector to share
// one aggregation point across a ReplayBatch or sweep.
package attr

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"simmr/internal/obs"
	"simmr/internal/trace"
)

// Phase identifies one attribution phase. The seven phases partition a
// job's completion interval; String returns the stable report label.
type Phase uint8

const (
	// PhaseAdmissionWait is arrival → first map-slot grant.
	PhaseAdmissionWait Phase = iota
	// PhaseMapRun is time within the map stage with ≥1 running map.
	PhaseMapRun
	// PhaseMapSlotWait is mid-map-stage idle time (no running maps, no
	// killed work pending) — waiting on map-slot contention.
	PhaseMapSlotWait
	// PhasePreemptRequeue is mid-map-stage idle time with preempted map
	// attempts queued for re-execution.
	PhasePreemptRequeue
	// PhaseShuffleBarrier is post-map-stage time where reduces are
	// running but every one of them is still in its shuffle.
	PhaseShuffleBarrier
	// PhaseReduceSlotWait is post-map-stage time with no running reduce.
	PhaseReduceSlotWait
	// PhaseReduceRun is post-map-stage time with ≥1 reduce in its
	// reduce (post-shuffle) phase.
	PhaseReduceRun

	// PhaseCount bounds the Phase space for per-phase arrays.
	PhaseCount
)

var phaseNames = [PhaseCount]string{
	"admission-wait", "map-run", "map-slot-wait", "preempt-requeue",
	"shuffle-barrier", "reduce-slot-wait", "reduce-run",
}

// WaitPhases lists the five wait phases — the breakdown exported as
// simmr_job_wait_seconds{phase=...} — in exposition order.
var WaitPhases = []Phase{
	PhaseAdmissionWait, PhaseMapSlotWait, PhasePreemptRequeue,
	PhaseShuffleBarrier, PhaseReduceSlotWait,
}

// String returns the stable lowercase phase label.
func (p Phase) String() string {
	if p < PhaseCount {
		return phaseNames[p]
	}
	return "unknown"
}

// IsWait reports whether the phase is waiting (vs doing work).
func (p Phase) IsWait() bool {
	switch p {
	case PhaseMapRun, PhaseReduceRun, PhaseShuffleBarrier:
		return false
	}
	return p < PhaseCount
}

// BlamePolicy is the WaitInterval.BlameJob value for waits that ended
// on a slot that sat free: no resident job held the slot — the policy
// chose not to (or was configured not to) schedule the waiter earlier.
const BlamePolicy = -1

// WaitInterval is one contended or policy-induced wait: the job made no
// forward progress in [Start, End] while wanting a slot of Class.
type WaitInterval struct {
	Phase Phase
	// Class is the contended slot class: false = map, true = reduce.
	Reduce bool
	Start  float64
	End    float64
	// BlameJob is the resident job whose slot hand-off ended the wait
	// (it held the contended slot through the wait's final instant), the
	// preempting job for PhasePreemptRequeue, or BlamePolicy when the
	// granted slot sat free during the wait (a policy decision, not slot
	// contention).
	BlameJob int
	// BlameTask is the task whose release was handed to the waiter; -1
	// for BlamePolicy and preemptor blame.
	BlameTask int
}

// Duration returns End − Start.
func (w *WaitInterval) Duration() float64 { return w.End - w.Start }

// Blame renders the blame assignment for reports.
func (w *WaitInterval) Blame() string {
	if w.BlameJob == BlamePolicy {
		return "policy"
	}
	if w.BlameTask < 0 {
		return fmt.Sprintf("job %d", w.BlameJob)
	}
	class := "m"
	if w.Reduce {
		class = "r"
	}
	return fmt.Sprintf("job %d/%s%d", w.BlameJob, class, w.BlameTask)
}

// Explanation decomposes one job's completion time. Phases sum exactly
// to Finish − Arrival (the sink folds the floating-point residual into
// the largest phase; see normalize).
type Explanation struct {
	JobID       int
	Name        string
	Arrival     float64
	Finish      float64
	Deadline    float64
	MapStageEnd float64

	// Phases holds seconds per attribution phase, indexed by Phase.
	Phases [PhaseCount]float64
	// Waits lists the job's individual wait intervals with blame, in
	// time order.
	Waits []WaitInterval

	// Missed is set when the job finished past a positive deadline.
	Missed bool
	// RootCause is the phase that consumed the most completion time —
	// for a missed deadline, the report's root cause. A run phase as
	// root cause means the job was simply too big for its window.
	RootCause Phase
}

// Completion returns Finish − Arrival.
func (e *Explanation) Completion() float64 { return e.Finish - e.Arrival }

// PhaseSum sums the phases in fixed Phase order — the quantity the
// conservation contract pins to Completion().
func (e *Explanation) PhaseSum() float64 {
	var sum float64
	for _, v := range e.Phases {
		sum += v
	}
	return sum
}

// WaitTotal sums the wait phases (everything but map-run/reduce-run/
// shuffle progress is counted as waiting; shuffle-barrier is included —
// the job occupies slots but makes no reduce progress).
func (e *Explanation) WaitTotal() float64 {
	var sum float64
	for _, p := range WaitPhases {
		sum += e.Phases[p]
	}
	return sum
}

// normalize folds the floating-point residual of the phase partition
// into one phase so PhaseSum() == Completion() exactly. The partition
// is exact by construction; the residual is a few ulps of accumulated
// rounding. A single phase cannot always absorb it — when the adjusted
// phase sits in the same binade as the total, round-to-nearest-even can
// make the left-to-right sum skip the total from either side forever —
// so after a bulk fold the walk retries across phases in descending
// magnitude until the sum lands exactly.
func (e *Explanation) normalize() {
	total := e.Finish - e.Arrival
	if total-e.PhaseSum() == 0 {
		return
	}
	order := [PhaseCount]int{}
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order[:], func(a, b int) bool {
		return e.Phases[order[a]] > e.Phases[order[b]]
	})
	for _, idx := range order {
		saved := e.Phases[idx]
		// Bulk fold, then single-ulp steps toward the target.
		if r := total - e.PhaseSum(); r != 0 {
			e.Phases[idx] += r
		}
		landed := false
		for step := 0; step < 8; step++ {
			r := total - e.PhaseSum()
			if r == 0 {
				landed = true
				break
			}
			dir := math.Inf(1)
			if r < 0 {
				dir = math.Inf(-1)
			}
			e.Phases[idx] = math.Nextafter(e.Phases[idx], dir)
		}
		if landed && e.Phases[idx] >= 0 {
			return
		}
		e.Phases[idx] = saved
	}
}

// CPStepKind tags one critical-path step.
type CPStepKind uint8

const (
	// CPTask is a task execution on the critical chain.
	CPTask CPStepKind = iota
	// CPWait is a slot wait on the chain (the blamed interval).
	CPWait
	// CPBarrier is the map-stage→shuffle barrier of a filler reduce.
	CPBarrier
	// CPArrival is the chain's origin: a job arrival.
	CPArrival
)

func (k CPStepKind) String() string {
	switch k {
	case CPTask:
		return "task"
	case CPWait:
		return "wait"
	case CPBarrier:
		return "barrier"
	default:
		return "arrival"
	}
}

// CPStep is one step of the makespan critical path, in chronological
// order after the walk reverses it.
type CPStep struct {
	Kind  CPStepKind
	JobID int
	// Task is the task index for CPTask steps, -1 otherwise.
	Task int
	// Reduce distinguishes the slot class for CPTask/CPWait steps.
	Reduce bool
	Start  float64
	End    float64
	// Detail carries the step's report annotation: the wait phase and
	// blame for CPWait, "preempted" for killed attempts.
	Detail string
}

// Options parameterizes a Sink.
type Options struct {
	// MapSlots / ReduceSlots are the engine's configured slot counts.
	// When set, free-slot accounting is exact: a wait is blamed on a
	// resident job only if the granted slot was genuinely held through
	// the wait (otherwise the policy is blamed). When zero, the sink
	// falls back to same-timestamp release pairing.
	MapSlots    int
	ReduceSlots int
	// Trace, when set, supplies job names and deadlines (they are not
	// part of the event stream). Jobs missing from the trace — e.g.
	// branch-injected ones — get empty names and no deadline.
	Trace *trace.Trace
}

// rspan is one reduce task's recorded sub-phase boundaries.
type rspan struct {
	start, shuffleEnd, end float64
}

// grant is a slot grant awaiting its task-start event, carrying the
// hand-off provenance resolved at allocation time.
type grant struct {
	waitStart float64 // NaN when the grant ended no wait
	handoff   int32   // releasing task record index, -1 for a free slot
}

// taskRec is one task execution, the node type of the critical path.
type taskRec struct {
	job, task  int32
	reduce     bool
	filler     bool
	preempted  bool
	start, end float64
	// handoff is the record index of the release this start was paired
	// with (-1: the slot sat free). waitStart is the opening of the wait
	// this grant ended (NaN: no wait).
	handoff   int32
	waitStart float64
}

// openKey identifies a running task (a job can run map i and reduce i
// simultaneously, so the class is part of the key).
type openKey struct {
	job, task int32
	reduce    bool
}

// classState tracks one slot class's hand-off book: how many slots sit
// free from earlier timestamps and which releases happened at the
// current timestamp, FIFO-paired with grants.
type classState struct {
	staleFree int     // slots free since before relTime (known-total mode)
	known     bool    // staleFree is exact (Options slot counts given)
	relTime   float64 // timestamp of the entries in rel
	rel       []int32 // task record indices released at relTime, FIFO
}

// age rolls unclaimed same-timestamp releases into the stale-free pool
// once the clock moves past them.
func (c *classState) age(now float64) {
	if now > c.relTime {
		if c.known {
			c.staleFree += len(c.rel)
		}
		c.rel = c.rel[:0]
		c.relTime = now
	}
}

// release records a freed slot at now.
func (c *classState) release(now float64, rec int32) {
	c.age(now)
	c.rel = append(c.rel, rec)
}

// grant pairs one allocation at now with its provenance: a stale free
// slot (no hand-off) or the oldest same-timestamp release (hand-off).
func (c *classState) grant(now float64) (handoff int32) {
	c.age(now)
	if c.known && c.staleFree > 0 {
		c.staleFree--
		return -1
	}
	if len(c.rel) > 0 {
		h := c.rel[0]
		c.rel = c.rel[1:]
		return h
	}
	return -1
}

// jobState is the per-job accumulation state.
type jobState struct {
	seen     bool
	arrived  bool
	finished bool

	id       int
	name     string
	arrival  float64
	deadline float64
	finish   float64

	// Map stage.
	firstAlloc   float64 // first map-slot grant; NaN until granted
	mapStageEnd  float64 // NaN until the stage completes
	runningMaps  int
	retryPending int     // preempted attempts queued for re-execution
	runStart     float64 // running-maps 0→1 transition time
	idleStart    float64 // running-maps →0 transition time; NaN while running
	preemptor    int     // job to blame for the current requeue; -1 none

	// Reduce stage.
	runningReduces int
	rIdleStart     float64 // post-map-stage reduce-idle start; NaN otherwise
	rSpans         []rspan

	phases [PhaseCount]float64
	waits  []WaitInterval
	grants [2][]grant // pending slot grants by class (0 map, 1 reduce)
	recs   []int32    // this job's task record indices, in start order
}

// Sink consumes one engine's event stream and reconstructs per-job
// explanations and the makespan critical path. Single-goroutine like
// every obs.Sink; one Sink per engine (Collector hands them out for
// parallel runtimes). Read Explanations / CriticalPath / Report after
// RunEnd.
type Sink struct {
	opts Options

	// dense holds job states for small IDs (the normalized-trace fast
	// path); sparse catches the rest.
	dense  []jobState
	sparse map[int]*jobState
	ids    []int // every observed job ID, arrival order

	recs    []taskRec
	open    map[openKey]int32
	classes [2]classState
	// lastClosed caches, per class, the record closed by the most recent
	// finish/preempt event — the engine emits the matching slot release
	// immediately after, so the release resolves in O(1).
	lastClosed [2]int32

	lastArrivalJob  int
	lastArrivalTime float64

	counters obs.Counters
	done     bool
	exps     []Explanation
	cp       []CPStep

	// onDone, set by Collector, publishes the finished sink.
	onDone func(*Sink)
}

// denseLimit bounds the dense job-state table: IDs below it index a
// slice, the rest fall back to a map.
const denseLimit = 1 << 16

// NewSink builds an attribution sink. Pass the engine's slot counts in
// opts for exact free-slot blame accounting.
func NewSink(opts Options) *Sink {
	s := &Sink{
		opts: opts,
		open: make(map[openKey]int32),
	}
	s.classes[0] = classState{staleFree: opts.MapSlots, known: opts.MapSlots > 0, relTime: math.Inf(-1)}
	s.classes[1] = classState{staleFree: opts.ReduceSlots, known: opts.ReduceSlots > 0, relTime: math.Inf(-1)}
	s.lastClosed[0], s.lastClosed[1] = -1, -1
	return s
}

// job returns (creating if needed) the state for id.
func (s *Sink) job(id int) *jobState {
	if id >= 0 && id < denseLimit {
		if id >= len(s.dense) {
			grown := make([]jobState, id+1, (id+1)*2)
			copy(grown, s.dense)
			s.dense = grown
		}
		j := &s.dense[id]
		if !j.seen {
			s.initJob(j, id)
		}
		return j
	}
	if s.sparse == nil {
		s.sparse = make(map[int]*jobState)
	}
	j := s.sparse[id]
	if j == nil {
		j = &jobState{}
		s.initJob(j, id)
		s.sparse[id] = j
	}
	return j
}

func (s *Sink) initJob(j *jobState, id int) {
	j.seen = true
	j.id = id
	j.firstAlloc = math.NaN()
	j.mapStageEnd = math.NaN()
	j.runStart = math.NaN()
	j.idleStart = math.NaN()
	j.rIdleStart = math.NaN()
	j.preemptor = -1
	if s.opts.Trace != nil {
		for _, tj := range s.opts.Trace.Jobs {
			if tj.ID == id {
				j.name = tj.Name
				j.deadline = tj.Deadline
				break
			}
		}
	}
	s.ids = append(s.ids, id)
}

// Event consumes one engine event.
func (s *Sink) Event(ev obs.Event) {
	switch ev.Kind {
	case obs.KindJobArrival:
		j := s.job(ev.JobID)
		j.arrived = true
		j.arrival = ev.Time
		s.lastArrivalJob, s.lastArrivalTime = ev.JobID, ev.Time
	case obs.KindMapSlotAlloc:
		s.onAlloc(s.job(ev.JobID), ev.Time, false)
	case obs.KindReduceSlotAlloc:
		s.onAlloc(s.job(ev.JobID), ev.Time, true)
	case obs.KindMapTaskStart:
		s.onTaskStart(s.job(ev.JobID), ev, false)
	case obs.KindReduceTaskStart:
		s.onTaskStart(s.job(ev.JobID), ev, true)
	case obs.KindMapTaskFinish:
		s.onMapEnd(s.job(ev.JobID), ev, false)
	case obs.KindPreempt:
		s.onMapEnd(s.job(ev.JobID), ev, true)
	case obs.KindReduceTaskFinish:
		s.onReduceFinish(s.job(ev.JobID), ev)
	case obs.KindMapSlotRelease, obs.KindReduceSlotRelease:
		// The matching task record was closed by the finish/preempt event
		// just before; hand its index to the hand-off book.
		class := 0
		reduce := false
		if ev.Kind == obs.KindReduceSlotRelease {
			class, reduce = 1, true
		}
		rec := int32(-1)
		if lc := s.lastClosed[class]; lc >= 0 {
			if r := &s.recs[lc]; int(r.job) == ev.JobID && int(r.task) == ev.Task {
				rec = lc
			}
		}
		if rec < 0 {
			// Fallback: find the job's just-closed record (its records are
			// in start order — scan backwards, the match is near the end).
			j := s.job(ev.JobID)
			for i := len(j.recs) - 1; i >= 0; i-- {
				r := &s.recs[j.recs[i]]
				if int(r.task) == ev.Task && r.reduce == reduce {
					rec = j.recs[i]
					break
				}
			}
		}
		s.classes[class].release(ev.Time, rec)
	case obs.KindMapStageComplete:
		s.onMapStageComplete(s.job(ev.JobID), ev.Time)
	case obs.KindFillerPatch:
		s.onFillerPatch(s.job(ev.JobID), ev)
	case obs.KindJobDeparture:
		s.onDeparture(s.job(ev.JobID), ev.Time)
	}
}

// onAlloc handles a slot grant: resolve the hand-off, close any open
// wait, and queue the grant for the task-start event that follows at
// the same timestamp.
func (s *Sink) onAlloc(j *jobState, now float64, reduce bool) {
	class := 0
	if reduce {
		class = 1
	}
	handoff := s.classes[class].grant(now)

	waitStart := math.NaN()
	if !reduce {
		switch {
		case math.IsNaN(j.firstAlloc):
			// First map grant: the admission wait [arrival, now] closes.
			j.firstAlloc = now
			j.phases[PhaseAdmissionWait] += now - j.arrival
			waitStart = j.arrival
			if now > j.arrival {
				s.recordWait(j, PhaseAdmissionWait, reduce, j.arrival, now, handoff)
			}
		case !math.IsNaN(j.idleStart):
			// Mid-stage idle closes: requeue wait if killed work pends.
			phase := PhaseMapSlotWait
			if j.retryPending > 0 {
				phase = PhasePreemptRequeue
			}
			j.phases[phase] += now - j.idleStart
			waitStart = j.idleStart
			if now > j.idleStart {
				s.recordWait(j, phase, reduce, j.idleStart, now, handoff)
			}
			j.idleStart = math.NaN()
		}
	} else if !math.IsNaN(j.rIdleStart) {
		// Post-map-stage reduce idle closes.
		j.phases[PhaseReduceSlotWait] += now - j.rIdleStart
		waitStart = j.rIdleStart
		if now > j.rIdleStart {
			s.recordWait(j, PhaseReduceSlotWait, reduce, j.rIdleStart, now, handoff)
		}
		j.rIdleStart = math.NaN()
	}
	j.grants[class] = append(j.grants[class], grant{waitStart: waitStart, handoff: handoff})
}

// recordWait appends one blamed wait interval.
func (s *Sink) recordWait(j *jobState, phase Phase, reduce bool, start, end float64, handoff int32) {
	w := WaitInterval{
		Phase: phase, Reduce: reduce, Start: start, End: end,
		BlameJob: BlamePolicy, BlameTask: -1,
	}
	if phase == PhasePreemptRequeue && j.preemptor >= 0 {
		// The wait exists because another job's arrival killed this one's
		// running maps; blame the preemptor over the hand-off.
		w.BlameJob = j.preemptor
	} else if handoff >= 0 {
		r := &s.recs[handoff]
		w.BlameJob, w.BlameTask = int(r.job), int(r.task)
	}
	j.waits = append(j.waits, w)
}

// onTaskStart opens a task record, consuming the matching grant.
func (s *Sink) onTaskStart(j *jobState, ev obs.Event, reduce bool) {
	class := 0
	if reduce {
		class = 1
	}
	g := grant{waitStart: math.NaN(), handoff: -1}
	if q := j.grants[class]; len(q) > 0 {
		g = q[0]
		j.grants[class] = q[1:]
	}
	rec := int32(len(s.recs))
	s.recs = append(s.recs, taskRec{
		job: int32(j.id), task: int32(ev.Task), reduce: reduce,
		filler: reduce && math.IsInf(ev.End, 1),
		start:  ev.Time, end: ev.End,
		handoff: g.handoff, waitStart: g.waitStart,
	})
	s.open[openKey{int32(j.id), int32(ev.Task), reduce}] = rec
	j.recs = append(j.recs, rec)

	if reduce {
		// Record the sub-phase boundaries for the post-map-stage
		// shuffle/reduce split (patched later for fillers).
		for len(j.rSpans) <= ev.Task {
			j.rSpans = append(j.rSpans, rspan{})
		}
		j.rSpans[ev.Task] = rspan{start: ev.Time, shuffleEnd: ev.ShuffleEnd, end: ev.End}
		j.runningReduces++
		if !math.IsNaN(j.rIdleStart) {
			// A reduce-idle marker set between this start's grant and now
			// (e.g. map-stage completion in the same macro-step) closes
			// here — the span is zero because grant and start share a
			// timestamp.
			j.phases[PhaseReduceSlotWait] += ev.Time - j.rIdleStart
			j.rIdleStart = math.NaN()
		}
		return
	}
	if j.retryPending > 0 {
		// The engine re-executes killed attempts before fresh indices.
		j.retryPending--
	}
	if j.runningMaps == 0 {
		j.runStart = ev.Time
	}
	j.runningMaps++
	if !math.IsNaN(j.idleStart) {
		// Same race as above on the map side: a finish at this timestamp
		// marked the job idle after this start's slot was already granted.
		phase := PhaseMapSlotWait
		if j.retryPending > 0 {
			phase = PhasePreemptRequeue
		}
		j.phases[phase] += ev.Time - j.idleStart
		j.idleStart = math.NaN()
	}
}

// onMapEnd closes a map record on finish or preemption.
func (s *Sink) onMapEnd(j *jobState, ev obs.Event, preempted bool) {
	key := openKey{int32(j.id), int32(ev.Task), false}
	if rec, ok := s.open[key]; ok {
		delete(s.open, key)
		r := &s.recs[rec]
		r.end = ev.Time
		r.preempted = preempted
		s.lastClosed[0] = rec
	}
	if preempted {
		j.retryPending++
		if s.lastArrivalTime == ev.Time {
			j.preemptor = s.lastArrivalJob
		}
	}
	j.runningMaps--
	if j.runningMaps == 0 {
		j.phases[PhaseMapRun] += ev.Time - j.runStart
		j.runStart = math.NaN()
		if math.IsNaN(j.mapStageEnd) {
			j.idleStart = ev.Time
		}
	}
}

func (s *Sink) onReduceFinish(j *jobState, ev obs.Event) {
	key := openKey{int32(j.id), int32(ev.Task), true}
	if rec, ok := s.open[key]; ok {
		delete(s.open, key)
		s.recs[rec].end = ev.Time
		s.lastClosed[1] = rec
	}
	if int(ev.Task) < len(j.rSpans) {
		j.rSpans[ev.Task].end = ev.Time
	}
	j.runningReduces--
	if j.runningReduces == 0 && !math.IsNaN(j.mapStageEnd) {
		j.rIdleStart = ev.Time
	}
}

func (s *Sink) onMapStageComplete(j *jobState, now float64) {
	j.mapStageEnd = now
	j.idleStart = math.NaN()
	if j.runningReduces == 0 {
		j.rIdleStart = now
	}
}

func (s *Sink) onFillerPatch(j *jobState, ev obs.Event) {
	if int(ev.Task) < len(j.rSpans) {
		j.rSpans[ev.Task].shuffleEnd = ev.ShuffleEnd
		j.rSpans[ev.Task].end = ev.End
	}
	if rec, ok := s.open[openKey{int32(j.id), int32(ev.Task), true}]; ok {
		s.recs[rec].end = ev.End
	}
}

// onDeparture finalizes the job's reduce-side split: post-map-stage
// busy time divides into reduce-run (covered by some reduce's
// post-shuffle sub-interval) and shuffle-barrier (the rest).
func (s *Sink) onDeparture(j *jobState, now float64) {
	j.finished = true
	j.finish = now
	if !math.IsNaN(j.rIdleStart) && j.rIdleStart < now {
		// Trailing reduce idle (zero in practice: a job departs at its
		// last task finish).
		j.phases[PhaseReduceSlotWait] += now - j.rIdleStart
	}
	j.rIdleStart = math.NaN()
	msc := j.mapStageEnd
	if math.IsNaN(msc) {
		return // never completed its map stage (cannot happen on a clean run)
	}
	busy := (now - msc) - j.phases[PhaseReduceSlotWait]
	run := reduceRunSeconds(j.rSpans, msc, now)
	if run > busy {
		run = busy
	}
	j.phases[PhaseReduceRun] = run
	if barrier := busy - run; barrier > 0 {
		j.phases[PhaseShuffleBarrier] = barrier
	}
}

// reduceRunSeconds measures the union of the jobs' post-shuffle reduce
// sub-intervals clipped to [msc, finish].
func reduceRunSeconds(spans []rspan, msc, finish float64) float64 {
	type iv struct{ a, b float64 }
	ivs := make([]iv, 0, len(spans))
	for _, sp := range spans {
		a, b := sp.shuffleEnd, sp.end
		if math.IsInf(b, 1) || b <= a {
			continue
		}
		if a < msc {
			a = msc
		}
		if b > finish {
			b = finish
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, k int) bool { return ivs[i].a < ivs[k].a })
	var total float64
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.a <= cur.b {
			if v.b > cur.b {
				cur.b = v.b
			}
			continue
		}
		total += cur.b - cur.a
		cur = v
	}
	total += cur.b - cur.a
	return total
}

// RunEnd finalizes the attribution: per-job explanations (conservation
// normalized) and the makespan critical path.
func (s *Sink) RunEnd(c obs.Counters) {
	s.counters = c
	s.exps = make([]Explanation, 0, len(s.ids))
	ids := append([]int(nil), s.ids...)
	sort.Ints(ids)
	for _, id := range ids {
		j := s.jobRO(id)
		if j == nil || !j.finished {
			continue
		}
		e := Explanation{
			JobID: j.id, Name: j.name,
			Arrival: j.arrival, Finish: j.finish, Deadline: j.deadline,
			MapStageEnd: j.mapStageEnd,
			Phases:      j.phases,
			Waits:       j.waits,
			Missed:      j.deadline > 0 && j.finish > j.deadline,
		}
		e.normalize()
		best := Phase(0)
		for p := Phase(1); p < PhaseCount; p++ {
			if e.Phases[p] > e.Phases[best] {
				best = p
			}
		}
		e.RootCause = best
		s.exps = append(s.exps, e)
	}
	s.cp = s.walkCriticalPath()
	s.done = true
	if s.onDone != nil {
		s.onDone(s)
	}
}

// jobRO returns the state for id without creating it.
func (s *Sink) jobRO(id int) *jobState {
	if id >= 0 && id < len(s.dense) {
		if j := &s.dense[id]; j.seen {
			return j
		}
		return nil
	}
	return s.sparse[id]
}

// walkCriticalPath walks backwards from the makespan-defining task
// through hand-off edges, own waits, and the filler barrier, down to a
// job arrival, then reverses into chronological order.
func (s *Sink) walkCriticalPath() []CPStep {
	cur := int32(-1)
	for i := range s.recs {
		r := &s.recs[i]
		if r.preempted || math.IsInf(r.end, 1) {
			continue
		}
		if cur < 0 || r.end > s.recs[cur].end ||
			(r.end == s.recs[cur].end && r.start > s.recs[cur].start) {
			cur = int32(i)
		}
	}
	if cur < 0 {
		return nil
	}
	var steps []CPStep
	visited := make(map[int32]bool)
	for cur >= 0 && !visited[cur] && len(steps) < 1<<16 {
		visited[cur] = true
		r := &s.recs[cur]
		j := s.jobRO(int(r.job))
		detail := ""
		if r.preempted {
			detail = "preempted"
		}
		steps = append(steps, CPStep{
			Kind: CPTask, JobID: int(r.job), Task: int(r.task),
			Reduce: r.reduce, Start: r.start, End: r.end, Detail: detail,
		})
		if r.filler && j != nil && !math.IsNaN(j.mapStageEnd) {
			// A filler's finish is pinned by the map-stage barrier, not by
			// its own start: chain through the last map finish.
			steps = append(steps, CPStep{
				Kind: CPBarrier, JobID: int(r.job), Task: -1,
				Start: j.mapStageEnd, End: r.end,
				Detail: "shuffle barrier (map stage gated the filler's finish)",
			})
			cur = lastMapRec(s, j, j.mapStageEnd)
			continue
		}
		if r.handoff >= 0 {
			cur = r.handoff
			continue
		}
		// Free-slot grant: the binding constraint is the job's own
		// history — the wait that this grant closed, a same-time own-task
		// finish (readiness), or the arrival itself.
		if !math.IsNaN(r.waitStart) && r.waitStart < r.start && j != nil {
			w := findWait(j, r.waitStart, r.start)
			detail := "wait"
			if w != nil {
				detail = fmt.Sprintf("%s (blame %s)", w.Phase, w.Blame())
			}
			steps = append(steps, CPStep{
				Kind: CPWait, JobID: int(r.job), Task: -1, Reduce: r.reduce,
				Start: r.waitStart, End: r.start, Detail: detail,
			})
			if w != nil && w.Phase == PhaseAdmissionWait {
				steps = append(steps, arrivalStep(j))
				break
			}
			cur = recEndingAt(s, j, r.waitStart)
			if cur < 0 {
				steps = append(steps, arrivalStep(j))
			}
			continue
		}
		if j != nil && r.start > j.arrival {
			if prev := recEndingAt(s, j, r.start); prev >= 0 {
				cur = prev
				continue
			}
		}
		if j != nil {
			steps = append(steps, arrivalStep(j))
		}
		break
	}
	// Reverse into chronological order.
	for i, k := 0, len(steps)-1; i < k; i, k = i+1, k-1 {
		steps[i], steps[k] = steps[k], steps[i]
	}
	return steps
}

func arrivalStep(j *jobState) CPStep {
	return CPStep{Kind: CPArrival, JobID: j.id, Task: -1,
		Start: j.arrival, End: j.arrival, Detail: "job arrival"}
}

// findWait locates the job's recorded wait interval [start, end].
func findWait(j *jobState, start, end float64) *WaitInterval {
	for i := range j.waits {
		if j.waits[i].Start == start && j.waits[i].End == end {
			return &j.waits[i]
		}
	}
	return nil
}

// lastMapRec returns the job's map record finishing at the map-stage
// end (the task whose departure completed the stage).
func lastMapRec(s *Sink, j *jobState, msc float64) int32 {
	for i := len(j.recs) - 1; i >= 0; i-- {
		r := &s.recs[j.recs[i]]
		if !r.reduce && !r.preempted && r.end == msc {
			return j.recs[i]
		}
	}
	return -1
}

// recEndingAt returns a non-preempted record of j ending exactly at t
// (the task whose finish opened an idle period), preferring the most
// recently started.
func recEndingAt(s *Sink, j *jobState, t float64) int32 {
	for i := len(j.recs) - 1; i >= 0; i-- {
		r := &s.recs[j.recs[i]]
		if r.end == t && !math.IsInf(r.end, 1) {
			return j.recs[i]
		}
	}
	return -1
}

// Done reports whether RunEnd has been delivered.
func (s *Sink) Done() bool { return s.done }

// Counters returns the run-level totals delivered at RunEnd.
func (s *Sink) Counters() obs.Counters { return s.counters }

// Explanations returns the per-job attributions, sorted by job ID.
// Valid after RunEnd.
func (s *Sink) Explanations() []Explanation { return s.exps }

// CriticalPath returns the makespan critical path in chronological
// order. Valid after RunEnd.
func (s *Sink) CriticalPath() []CPStep { return s.cp }

// Fork deep-copies the sink's mid-stream state so a what-if branch can
// continue attribution from a shared replay prefix: feed the copy the
// branch engine's event suffix and it produces a full-run attribution.
// The receiver must not receive further events concurrently with Fork
// (BranchSet forks only after the prefix pauses).
func (s *Sink) Fork() *Sink {
	f := &Sink{
		opts:            s.opts,
		ids:             append([]int(nil), s.ids...),
		recs:            append([]taskRec(nil), s.recs...),
		open:            make(map[openKey]int32, len(s.open)),
		lastArrivalJob:  s.lastArrivalJob,
		lastArrivalTime: s.lastArrivalTime,
		lastClosed:      s.lastClosed,
	}
	for k, v := range s.open {
		f.open[k] = v
	}
	for c := range s.classes {
		f.classes[c] = s.classes[c]
		f.classes[c].rel = append([]int32(nil), s.classes[c].rel...)
	}
	f.dense = make([]jobState, len(s.dense))
	for i := range s.dense {
		copyJobState(&f.dense[i], &s.dense[i])
	}
	if s.sparse != nil {
		f.sparse = make(map[int]*jobState, len(s.sparse))
		for id, j := range s.sparse {
			nj := &jobState{}
			copyJobState(nj, j)
			f.sparse[id] = nj
		}
	}
	return f
}

func copyJobState(dst, src *jobState) {
	*dst = *src
	dst.rSpans = append([]rspan(nil), src.rSpans...)
	dst.waits = append([]WaitInterval(nil), src.waits...)
	dst.recs = append([]int32(nil), src.recs...)
	for c := range src.grants {
		dst.grants[c] = append([]grant(nil), src.grants[c]...)
	}
}

// Collector hands out one attribution sink per engine and merges the
// finished explanations — the shared aggregation point for ReplayBatch
// and sweeps. Sink() is safe for concurrent calls (obs.SinkFactory
// contract), as is the merge each sink performs at its RunEnd.
type Collector struct {
	opts Options

	mu    sync.Mutex
	sinks []*Sink
}

// NewCollector builds a collector; opts parameterize every sink it
// hands out.
func NewCollector(opts Options) *Collector {
	return &Collector{opts: opts}
}

// Sink returns a fresh per-engine attribution sink that publishes its
// explanations back to the collector at RunEnd.
func (c *Collector) Sink() obs.Sink {
	s := NewSink(c.opts)
	s.onDone = func(done *Sink) {
		c.mu.Lock()
		c.sinks = append(c.sinks, done)
		c.mu.Unlock()
	}
	return s
}

// Runs returns the finished per-run sinks, in completion order.
func (c *Collector) Runs() []*Sink {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Sink(nil), c.sinks...)
}

// Explanations returns every finished run's explanations, concatenated
// in run-completion order.
func (c *Collector) Explanations() []Explanation {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Explanation
	for _, s := range c.sinks {
		out = append(out, s.exps...)
	}
	return out
}
