package synth

import (
	"fmt"
	"math/rand"

	"simmr/internal/stats"
	"simmr/internal/trace"
)

// WeightedShape pairs a job shape with a relative sampling weight.
type WeightedShape struct {
	Shape  *JobShape
	Weight float64
}

// StreamConfig describes a streaming synthesis run: how many jobs to
// emit, at what arrival rate, from which shapes, and how much template
// sharing the stream should exhibit.
type StreamConfig struct {
	// Name becomes the trace name of whatever the stream is collected
	// or packed into.
	Name string
	// Jobs is the total number of jobs the stream yields.
	Jobs int
	// MeanInterArrival is the mean of the exponential inter-arrival
	// gap, in seconds.
	MeanInterArrival float64
	// TemplatePool, when > 0, pre-generates that many templates (drawn
	// from Shapes) and has every job reference one of them — the
	// template-sharing regime the binary trace store deduplicates.
	// When 0 every job gets a freshly drawn template.
	TemplatePool int
	// DeadlineFraction in [0,1] is the probability a job carries a
	// deadline; DeadlineSlack is the mean slack beyond arrival, in
	// seconds (deadline = arrival + slack·(0.5 + U[0,1))).
	DeadlineFraction float64
	DeadlineSlack    float64
	// Shapes are the job classes, sampled by weight. Weights need not
	// sum to 1; non-positive weights are rejected.
	Shapes []WeightedShape
}

// Stream yields synthetic jobs one at a time, in arrival order with
// sequential IDs, holding only its template pool in memory — never the
// full trace. It satisfies tracebin.JobSource, so
//
//	w, _ := tracebin.NewWriter(f, cfg.Name)
//	w.AddAll(stream)
//	w.Close()
//
// packs a million-job trace without a million-job allocation, and the
// same stream feeds engine replays directly.
type Stream struct {
	cfg    StreamConfig
	rng    *rand.Rand
	pool   []*trace.Template
	cumW   []float64 // cumulative shape weights for roulette draw
	totalW float64
	next   int
	t      float64
}

// NewStream validates the config and pre-generates the template pool.
func NewStream(cfg StreamConfig, rng *rand.Rand) (*Stream, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("synth: stream jobs = %d", cfg.Jobs)
	}
	if cfg.MeanInterArrival < 0 {
		return nil, fmt.Errorf("synth: stream mean inter-arrival = %v", cfg.MeanInterArrival)
	}
	if len(cfg.Shapes) == 0 {
		return nil, fmt.Errorf("synth: stream has no shapes")
	}
	if cfg.DeadlineFraction < 0 || cfg.DeadlineFraction > 1 {
		return nil, fmt.Errorf("synth: deadline fraction %v outside [0,1]", cfg.DeadlineFraction)
	}
	if cfg.DeadlineFraction > 0 && cfg.DeadlineSlack <= 0 {
		return nil, fmt.Errorf("synth: deadline fraction %v needs positive slack, got %v",
			cfg.DeadlineFraction, cfg.DeadlineSlack)
	}
	s := &Stream{cfg: cfg, rng: rng, cumW: make([]float64, len(cfg.Shapes))}
	for i, ws := range cfg.Shapes {
		if ws.Shape == nil || ws.Weight <= 0 {
			return nil, fmt.Errorf("synth: shape %d is nil or has weight %v", i, ws.Weight)
		}
		s.totalW += ws.Weight
		s.cumW[i] = s.totalW
	}
	if cfg.TemplatePool < 0 {
		return nil, fmt.Errorf("synth: template pool = %d", cfg.TemplatePool)
	}
	if cfg.TemplatePool > 0 {
		s.pool = make([]*trace.Template, cfg.TemplatePool)
		for i := range s.pool {
			tpl, err := s.drawShape().Generate(rng)
			if err != nil {
				return nil, err
			}
			s.pool[i] = tpl
		}
	}
	return s, nil
}

// drawShape samples a shape by weight.
func (s *Stream) drawShape() *JobShape {
	x := s.rng.Float64() * s.totalW
	for i, c := range s.cumW {
		if x < c {
			return s.cfg.Shapes[i].Shape
		}
	}
	return s.cfg.Shapes[len(s.cfg.Shapes)-1].Shape
}

// Next yields the next job, or (nil, false, nil) once cfg.Jobs have
// been emitted. Arrivals are nondecreasing and IDs sequential from 0,
// matching what trace.Normalize would produce — streamed jobs replay
// and pack without a materialized trace.
func (s *Stream) Next() (*trace.Job, bool, error) {
	if s.next >= s.cfg.Jobs {
		return nil, false, nil
	}
	var tpl *trace.Template
	if len(s.pool) > 0 {
		tpl = s.pool[s.rng.Intn(len(s.pool))]
	} else {
		var err error
		tpl, err = s.drawShape().Generate(s.rng)
		if err != nil {
			return nil, false, err
		}
	}
	j := &trace.Job{
		ID:       s.next,
		Name:     tpl.AppName,
		Arrival:  s.t,
		Template: tpl,
	}
	if s.cfg.DeadlineFraction > 0 && s.rng.Float64() < s.cfg.DeadlineFraction {
		j.Deadline = j.Arrival + s.cfg.DeadlineSlack*(0.5+s.rng.Float64())
	}
	s.next++
	s.t += s.rng.ExpFloat64() * s.cfg.MeanInterArrival
	return j, true, nil
}

// Emitted reports how many jobs the stream has yielded so far.
func (s *Stream) Emitted() int { return s.next }

// Name returns the configured trace name.
func (s *Stream) Name() string { return s.cfg.Name }

// Collect materializes the remainder of the stream into a trace — the
// small-n convenience path; for big traces feed the stream to a
// tracebin.Writer or an engine batch instead.
func (s *Stream) Collect() (*trace.Trace, error) {
	tr := &trace.Trace{Name: s.cfg.Name, Jobs: make([]*trace.Job, 0, s.cfg.Jobs-s.next)}
	for {
		j, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	if len(tr.Jobs) == 0 {
		return nil, trace.ErrEmptyTrace
	}
	return tr, nil
}

// ProductionShapes returns the six application shapes behind
// ProductionTrace, for use as a streaming shape set.
func ProductionShapes() []WeightedShape {
	shapes := productionShapes()
	out := make([]WeightedShape, len(shapes))
	for i, sh := range shapes {
		out[i] = WeightedShape{Shape: sh, Weight: 1}
	}
	return out
}

// MultiTenantShape returns the small-job shape of MultiTenantTrace as
// a streaming shape — 2–6 maps, 0–2 reduces, durations long relative
// to a dense submission burst. (Task counts draw from continuous
// uniforms and floor in JobShape.Generate, matching rng.Intn ranges.)
func MultiTenantShape() *JobShape {
	return &JobShape{
		Name:           "tenant",
		NumMaps:        stats.Uniform{A: 2, B: 7},
		NumReduces:     stats.Uniform{A: 0, B: 3},
		Map:            stats.Uniform{A: 30, B: 180},
		TypicalShuffle: stats.Uniform{A: 5, B: 20},
		FirstShuffle:   stats.Uniform{A: 5, B: 20},
		Reduce:         stats.Uniform{A: 10, B: 40},
	}
}
