// Metrics snapshot sink: plain counters behind a mutex so an HTTP
// debug endpoint (expvar / pprof, see cmd/simmr --debug-addr) can read
// a consistent snapshot while the simulation is still running.

package obs

import "sync"

// MetricsSnapshot is a point-in-time copy of a MetricsSink's counters.
// ByKind is indexed by Kind.
type MetricsSnapshot struct {
	// Observed counts events delivered to the sink so far (live during
	// the run; Counters.Events is only final at RunEnd).
	Observed uint64
	ByKind   [KindCount]uint64
	// SimTime is the simulated time of the latest observed event.
	SimTime float64
	// Counters holds the run-level totals; they accumulate per RunEnd
	// and are complete once Done is true.
	Counters Counters
	// RunsFinished counts RunEnd deliveries; RunsExpected is the target
	// set via ExpectRuns (0 means "a single run" for compatibility).
	RunsFinished int
	RunsExpected int
	// Done reports that every expected run has finished: RunsFinished
	// has reached RunsExpected (or one run, when no expectation was
	// set). A sink shared across a sweep no longer reports done after
	// the first run.
	Done bool
}

// MetricsSink tallies the event stream into counters. Unlike other
// sinks it IS safe for concurrent use: Event/RunEnd may race with
// Snapshot readers (the expvar endpoint), and one MetricsSink may be
// shared across engines to aggregate a whole sweep — at the cost of a
// mutex per event, which is why sharing one is a choice, not the
// default.
type MetricsSink struct {
	mu sync.Mutex
	s  MetricsSnapshot
}

// NewMetricsSink returns a zeroed metrics sink.
func NewMetricsSink() *MetricsSink { return &MetricsSink{} }

// ExpectRuns adds n to the number of RunEnd deliveries after which the
// sink reports Done. A sink shared across a sweep must be told the
// sweep size (e.g. ExpectRuns(len(cells))) or its snapshot would report
// a live sweep as done after the first cell finished. Without an
// expectation the first RunEnd still sets Done, preserving the
// single-run behavior.
func (m *MetricsSink) ExpectRuns(n int) {
	m.mu.Lock()
	m.s.RunsExpected += n
	m.s.Done = m.s.RunsExpected > 0 && m.s.RunsFinished >= m.s.RunsExpected
	m.mu.Unlock()
}

// Event tallies one engine event.
func (m *MetricsSink) Event(ev Event) {
	m.mu.Lock()
	m.s.Observed++
	m.s.ByKind[ev.Kind]++
	if ev.Time > m.s.SimTime {
		m.s.SimTime = ev.Time
	}
	m.mu.Unlock()
}

// RunEnd stores the final run counters. When the sink aggregates
// several engines, the scalar totals accumulate and HeapHighWater
// keeps the maximum across runs.
func (m *MetricsSink) RunEnd(c Counters) {
	m.mu.Lock()
	t := &m.s.Counters
	t.Events += c.Events
	t.Preemptions += c.Preemptions
	t.FillerPatches += c.FillerPatches
	t.MapSlotAllocs += c.MapSlotAllocs
	t.ReduceSlotAllocs += c.ReduceSlotAllocs
	t.Jobs += c.Jobs
	if c.HeapHighWater > t.HeapHighWater {
		t.HeapHighWater = c.HeapHighWater
	}
	if c.Makespan > t.Makespan {
		t.Makespan = c.Makespan
	}
	m.s.RunsFinished++
	// Done tracks expected-vs-finished runs: with no expectation set the
	// first RunEnd completes "the run"; with ExpectRuns(n) the sink is
	// done only once all n runs delivered.
	m.s.Done = m.s.RunsFinished >= m.s.RunsExpected || m.s.RunsExpected <= 0
	m.mu.Unlock()
}

// Snapshot returns a consistent copy of the counters.
func (m *MetricsSink) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.s
}

// ExpvarValue renders the snapshot as a plain map for
// expvar.Publish(name, expvar.Func(sink.ExpvarValue)) — no expvar
// import here, so non-HTTP consumers don't pull in net/http side
// effects.
func (m *MetricsSink) ExpvarValue() any {
	s := m.Snapshot()
	byKind := make(map[string]uint64, KindCount)
	for k := Kind(0); k < KindCount; k++ {
		if s.ByKind[k] > 0 {
			byKind[k.String()] = s.ByKind[k]
		}
	}
	return map[string]any{
		"observed_events":    s.Observed,
		"by_kind":            byKind,
		"sim_time_s":         s.SimTime,
		"done":               s.Done,
		"runs_expected":      s.RunsExpected,
		"runs_finished":      s.RunsFinished,
		"engine_events":      s.Counters.Events,
		"heap_high_water":    s.Counters.HeapHighWater,
		"preemptions":        s.Counters.Preemptions,
		"filler_patches":     s.Counters.FillerPatches,
		"map_slot_allocs":    s.Counters.MapSlotAllocs,
		"reduce_slot_allocs": s.Counters.ReduceSlotAllocs,
		"jobs":               s.Counters.Jobs,
		"makespan_s":         s.Counters.Makespan,
	}
}
