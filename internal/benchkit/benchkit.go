// Package benchkit holds the engine microbenchmark bodies shared by the
// top-level bench harness (bench_test.go) and cmd/benchreport. Keeping
// one body per benchmark guarantees that the numbers in
// BENCH_engine.json are produced by exactly the code that `go test
// -bench` runs interactively.
package benchkit

import (
	"math/rand"
	"runtime"
	"testing"

	"simmr/internal/synth"
	"simmr/pkg/simmr"
)

// replayJobs sizes the replay-throughput fixture; sweepJobs the capacity
// sweep one (smaller, because a sweep replays it once per grid cell).
const (
	replayJobs = 200
	sweepJobs  = 40
)

// sweepSlotCounts is the square capacity-sweep grid. Sixteen cells keep
// the worker pool load-balanced well past typical core counts, so the
// parallel/serial wall-time ratio approaches GOMAXPROCS on multicore
// hosts.
var sweepSlotCounts = []int{4, 8, 12, 16, 24, 32, 40, 48, 64, 80, 96, 112, 128, 160, 192, 256}

// fixture builds the deterministic production-style trace the
// benchmarks replay. The trace is read-only to the engine, so one
// instance is shared across all iterations and all sweep cells.
func fixture(jobs int) *simmr.Trace {
	rng := rand.New(rand.NewSource(1))
	tr, err := synth.ProductionTrace(jobs, rng)
	if err != nil {
		panic(err) // statically valid generator parameters
	}
	return tr
}

// Replay measures whole-trace replay on a shared trace: events/sec
// throughput and — via ReportAllocs — the steady-state allocations per
// replay. It replays through a ReplayPool, the same engine-reuse path
// CapacitySweep and ReplayBatch use, so after the first iteration the
// engine's jobs slab and the queue's event slab are fully recycled and
// allocs/op reflects the pooled steady state, not cold construction.
func Replay(b *testing.B) {
	tr := fixture(replayJobs)
	var pool simmr.ReplayPool
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := pool.Run(simmr.DefaultReplayConfig(), tr, simmr.NewFIFO())
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// Sweep measures a 16-cell square capacity sweep with the given worker
// count (1 = serial reference, 0 = one worker per CPU). Cells share one
// trace; results are byte-identical across worker counts.
func Sweep(b *testing.B, workers int) {
	tr := fixture(sweepJobs)
	cfg := simmr.SweepConfig{MapSlotCounts: sweepSlotCounts, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simmr.CapacitySweep(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Metrics summarizes one Collect run; cmd/benchreport serializes it as
// BENCH_engine.json.
type Metrics struct {
	GoMaxProcs           int     `json:"gomaxprocs"`
	NumCPU               int     `json:"num_cpu"`
	EventsPerSec         float64 `json:"events_per_sec"`
	ReplayAllocsPerOp    int64   `json:"replay_allocs_per_op"`
	ReplayBytesPerOp     int64   `json:"replay_bytes_per_op"`
	SweepSerialSeconds   float64 `json:"sweep_serial_seconds"`
	SweepParallelSeconds float64 `json:"sweep_parallel_seconds"`
	// SweepSpeedup is serial / parallel wall time for the same grid; it
	// approaches NumCPU on unloaded multicore hosts and is ~1.0 on a
	// single core.
	SweepSpeedup float64 `json:"sweep_speedup"`
	GeneratedAt  string  `json:"generated_at,omitempty"`
}

// Collect runs the three engine benchmarks through testing.Benchmark
// and condenses their results. The sweep pair is pinned explicitly —
// GOMAXPROCS=1 for the serial reference, GOMAXPROCS=NumCPU for the
// parallel run — so the recorded speedup measures the worker pool, not
// whatever GOMAXPROCS the harness happened to inherit.
func Collect() Metrics {
	m := Metrics{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	rep := testing.Benchmark(Replay)
	m.EventsPerSec = rep.Extra["events/sec"]
	m.ReplayAllocsPerOp = rep.AllocsPerOp()
	m.ReplayBytesPerOp = rep.AllocedBytesPerOp()

	prev := runtime.GOMAXPROCS(1)
	serial := testing.Benchmark(func(b *testing.B) { Sweep(b, 1) })
	runtime.GOMAXPROCS(runtime.NumCPU())
	par := testing.Benchmark(func(b *testing.B) { Sweep(b, 0) })
	runtime.GOMAXPROCS(prev)
	m.SweepSerialSeconds = serial.T.Seconds() / float64(serial.N)
	m.SweepParallelSeconds = par.T.Seconds() / float64(par.N)
	if m.SweepParallelSeconds > 0 {
		m.SweepSpeedup = m.SweepSerialSeconds / m.SweepParallelSeconds
	}
	return m
}
