//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm

package tracebin

import "unsafe"

// arenaFloats views b as a []float64. On little-endian hosts the view
// is zero-copy: the file stores float64 bits little-endian, so the
// backing bytes (an mmap page-aligned region, or a section copy whose
// start the format keeps 8-aligned within the file) reinterpret
// directly. If the base pointer happens to be misaligned (possible
// only on the heap-copy fallback), the floats are decoded into a
// fresh slice instead — correctness never depends on the fast path.
func arenaFloats(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	return decodeArena(b)
}
