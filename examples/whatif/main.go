// Capacity planning what-if: the cluster-management task SimMR was
// built for (§I: "evaluate whether additional resources are required").
//
// Given a profiled production job and a completion-time goal, sweep
// simulated cluster sizes to find the smallest cluster that meets the
// goal — seconds of simulation instead of hours of testbed runs. Also
// demonstrates trace scaling (the paper's §VII future work): predicting
// behaviour on a 2x dataset from the profiled run.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simmr/pkg/simmr"
)

func main() {
	// Profile Bayes/43GB once on the emulated testbed.
	app := simmr.PaperApps()[5] // Bayes
	res, err := simmr.RunCluster(simmr.DefaultClusterConfig(),
		[]simmr.ClusterJob{{Spec: app.Spec(0)}}, simmr.NewFIFO(), nil)
	if err != nil {
		log.Fatal(err)
	}
	tpl := simmr.ProfileClusterResult(res).Jobs[0].Template
	fmt.Printf("profiled %s: %d maps, %d reduces, %.0f s on 64+64 slots\n\n",
		tpl.AppName, tpl.NumMaps, tpl.NumReduces, res.Jobs[0].CompletionTime())

	const goal = 400.0 // seconds
	fmt.Printf("goal: complete within %.0f s — sweeping cluster sizes:\n", goal)
	tr := &simmr.Trace{Jobs: []*simmr.Job{{Template: tpl.Clone()}}}
	tr.Normalize()
	points, err := simmr.CapacitySweep(tr, simmr.SweepConfig{
		MapSlotCounts: []int{16, 32, 64, 128, 256},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("slots  predicted  model-low  model-up  meets-goal")
	for _, p := range points {
		bounds := simmr.JobBounds(tpl.Profile(), p.MapSlots, p.ReduceSlots)
		fmt.Printf("%5d  %8.0f s %8.0f s %8.0f s  %v\n",
			p.MapSlots, p.Makespan, bounds.Low, bounds.Up, p.Makespan <= goal)
	}
	if best := simmr.SmallestClusterMeeting(points, goal); best != nil {
		fmt.Printf("\n-> smallest cluster meeting the goal: %d map + %d reduce slots\n\n",
			best.MapSlots, best.ReduceSlots)
	} else {
		fmt.Println("\n-> no swept size meets the goal")
	}

	// Future-work bonus: scale the trace to a 2x dataset and re-predict.
	rng := rand.New(rand.NewSource(7))
	scaled, err := simmr.ScaleTemplate(tpl, 2, false, rng)
	if err != nil {
		log.Fatal(err)
	}
	scaledTrace := &simmr.Trace{Jobs: []*simmr.Job{{Template: scaled}}}
	scaledTrace.Normalize()
	rep, err := simmr.Replay(simmr.DefaultReplayConfig(), scaledTrace, simmr.NewFIFO())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace scaling: on a 2x dataset (%d maps) the same cluster is predicted to take %.0f s\n",
		scaled.NumMaps, rep.Jobs[0].CompletionTime())
}
